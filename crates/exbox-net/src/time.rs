//! Simulated clock types.
//!
//! The whole workspace (datapath, simulator, testbed harness) shares a
//! single notion of time: an [`Instant`] is nanoseconds since the
//! start of a run, a [`Duration`] is a nanosecond span. Plain `u64`
//! nanoseconds give ~584 years of range — plenty for 16-second
//! simulation runs — while staying trivially ordered and hashable,
//! which the discrete-event queue relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (nanoseconds since run start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// The run origin, t = 0.
    pub const ZERO: Instant = Instant(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Instant(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Instant(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Instant(s * 1_000_000_000)
    }

    /// Raw nanoseconds since run start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later (robust against reordered samples).
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics if `s` is negative or non-finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        Duration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` for the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// How long `bytes` take to serialise onto a link of `bits_per_sec`.
    ///
    /// # Panics
    /// Panics if `bits_per_sec == 0`.
    pub fn transmission(bytes: u64, bits_per_sec: u64) -> Duration {
        assert!(bits_per_sec > 0, "link rate must be positive");
        // bytes*8 / bps seconds -> scale to ns with u128 to avoid overflow.
        let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
        Duration(ns as u64)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0 - rhs.0)
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Instant::from_secs(1), Instant::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let t = Instant::from_secs(2) + Duration::from_millis(500);
        assert_eq!(t.as_nanos(), 2_500_000_000);
        assert_eq!(t - Instant::from_secs(1), Duration::from_millis(1500));
        assert_eq!(Duration::from_secs(1) * 3, Duration::from_secs(3));
        assert_eq!(Duration::from_secs(3) / 3, Duration::from_secs(1));
    }

    #[test]
    fn saturating_since_handles_reorder() {
        let early = Instant::from_secs(1);
        let late = Instant::from_secs(2);
        assert_eq!(late.saturating_since(early), Duration::from_secs(1));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
    }

    #[test]
    fn transmission_time() {
        // 1500 bytes at 12 Mbps = 1 ms.
        assert_eq!(
            Duration::transmission(1500, 12_000_000),
            Duration::from_millis(1)
        );
        // 1 byte at 8 bps = 1 s.
        assert_eq!(Duration::transmission(1, 8), Duration::from_secs(1));
    }

    #[test]
    fn transmission_no_overflow_at_large_sizes() {
        let d = Duration::transmission(u32::MAX as u64, 1_000);
        assert!(d.as_secs_f64() > 3e7);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering() {
        assert!(Instant::from_secs(1) < Instant::from_secs(2));
        assert!(Duration::from_millis(999) < Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }
}
