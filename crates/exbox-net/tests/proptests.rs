//! Property-based tests for exbox-net invariants.

use std::net::Ipv4Addr;

use exbox_net::pcap::{PcapReader, PcapWriter};
use exbox_net::shaper::LinkVerdict;
use exbox_net::{
    Direction, Duration, FlowKey, Instant, NetemLink, Packet, Protocol, QosMeter, TokenBucket,
};
use proptest::prelude::*;

fn arb_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp)]
}

fn arb_flow_key() -> impl Strategy<Value = FlowKey> {
    (0u32..1000, 0u32..1000, 1u8..250, arb_protocol())
        .prop_map(|(c, f, s, p)| FlowKey::synthetic(c, f, s, p))
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u64..10_000_000_000,
        48u32..65_000,
        arb_flow_key(),
        prop_oneof![Just(Direction::Uplink), Just(Direction::Downlink)],
        0u64..u16::MAX as u64,
    )
        .prop_map(|(ns, size, flow, dir, seq)| {
            Packet::new(Instant::from_nanos(ns), size, flow, dir, seq)
        })
}

proptest! {
    /// pcap round-trips preserve all metadata (seq mod 2^16).
    #[test]
    fn pcap_roundtrip(pkts in prop::collection::vec(arb_packet(), 0..40)) {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back = PcapReader::new(&bytes[..]).unwrap().read_all().unwrap();
        prop_assert_eq!(back.len(), pkts.len());
        for (a, b) in pkts.iter().zip(&back) {
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.size, b.size);
            prop_assert_eq!(a.flow, b.flow);
            prop_assert_eq!(a.direction, b.direction);
            prop_assert_eq!(a.seq & 0xFFFF, b.seq);
        }
    }

    /// Token bucket never lets more than burst + rate*time through.
    #[test]
    fn token_bucket_enforces_rate(
        rate_kbps in 1u64..10_000,
        burst in 100u64..100_000,
        sizes in prop::collection::vec(1u32..2_000, 1..200),
    ) {
        let rate = rate_kbps * 1_000;
        let mut b = TokenBucket::new(rate, burst);
        let mut sent = 0u64;
        let mut t = Instant::ZERO;
        for (i, &s) in sizes.iter().enumerate() {
            t = Instant::from_micros(i as u64 * 100);
            if b.try_consume(t, s) {
                sent += s as u64;
            }
        }
        let elapsed = t.as_secs_f64();
        let ceiling = burst as f64 + elapsed * rate as f64 / 8.0 + 1.0;
        prop_assert!(sent as f64 <= ceiling, "sent {sent} > ceiling {ceiling}");
    }

    /// A lossless netem link delivers every packet, in FIFO order, no
    /// earlier than arrival + serialisation + propagation.
    #[test]
    fn netem_delivery_monotone_and_bounded(
        rate_mbps in 1u64..100,
        delay_ms in 0u64..300,
        arrivals in prop::collection::vec((0u64..1_000_000u64, 64u32..1500), 1..100),
    ) {
        let rate = rate_mbps * 1_000_000;
        let mut link = NetemLink::new(rate, Duration::from_millis(delay_ms), 0.0, 1 << 30, 1);
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut prev_delivery = Instant::ZERO;
        for (us, size) in sorted {
            let at = Instant::from_micros(us);
            match link.offer(at, size) {
                LinkVerdict::Deliver(t) => {
                    let min = at + Duration::transmission(size as u64, rate) + Duration::from_millis(delay_ms);
                    prop_assert!(t >= min, "delivered {t} before floor {min}");
                    prop_assert!(t >= prev_delivery, "FIFO violated");
                    prev_delivery = t;
                }
                v => prop_assert!(false, "lossless link dropped: {v:?}"),
            }
        }
    }

    /// QoS meter loss ratio equals drops / (drops + deliveries).
    #[test]
    fn qos_loss_ratio_exact(events in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut m = QosMeter::new();
        let mut drops = 0u64;
        for (i, &delivered) in events.iter().enumerate() {
            if delivered {
                m.deliver(
                    Instant::from_millis(i as u64),
                    Instant::from_millis(i as u64 + 1),
                    100,
                );
            } else {
                m.drop_packet();
                drops += 1;
            }
        }
        let s = m.sample();
        let expect = drops as f64 / events.len() as f64;
        prop_assert!((s.loss_ratio - expect).abs() < 1e-12);
    }

    /// Flow keys constructed from the synthetic helper always put the
    /// client in 10.0.0.0/8 — the invariant the pcap reader's
    /// direction heuristic relies on.
    #[test]
    fn synthetic_client_in_ten_slash_eight(c in 0u32..65_536, f in any::<u32>(), s in 1u8..255) {
        let k = FlowKey::synthetic(c, f, s, Protocol::Udp);
        prop_assert_eq!(k.client_ip.octets()[0], 10);
        prop_assert!(k.server_ip != Ipv4Addr::new(10, 0, 0, 0));
    }
}
