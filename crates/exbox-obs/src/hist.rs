//! Fixed-bucket histograms with atomic recording.

use crate::sync::{AtomicU64, Ordering};

/// Standard bucket layouts.
pub mod buckets {
    /// `count` upper bounds starting at `start`, each `factor` times
    /// the previous — the classic latency ladder.
    ///
    /// # Panics
    /// Panics unless `start > 0`, `factor > 1` and `count >= 1`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(start > 0.0 && factor > 1.0 && count >= 1, "bad bucket spec");
        let mut b = Vec::with_capacity(count);
        let mut v = start;
        for _ in 0..count {
            b.push(v);
            v *= factor;
        }
        b
    }

    /// `count` upper bounds `start, start+step, …`.
    ///
    /// # Panics
    /// Panics unless `step > 0` and `count >= 1`.
    pub fn linear(start: f64, step: f64, count: usize) -> Vec<f64> {
        assert!(step > 0.0 && count >= 1, "bad bucket spec");
        (0..count).map(|i| start + step * i as f64).collect()
    }

    /// Nanosecond latency ladder: 1 µs … ≈8.6 s, doubling.
    pub fn latency_ns() -> Vec<f64> {
        exponential(1_000.0, 2.0, 24)
    }

    /// Unit-interval grid (20 buckets of 0.05) for ratios and
    /// normalised QoS/QoE values.
    pub fn unit() -> Vec<f64> {
        linear(0.05, 0.05, 20)
    }

    /// Small-count grid (1 … 10 000, ×10) for batch sizes, iteration
    /// counts and sample-store sizes.
    pub fn counts() -> Vec<f64> {
        exponential(1.0, 10.0, 8)
    }

    /// Wide-count grid (1 … ≈10⁹, ×4) for quantities that span from
    /// single digits to million-user scale — sample-store sizes and
    /// incremental Gram row counts — without saturating the top
    /// bucket.
    pub fn counts_wide() -> Vec<f64> {
        exponential(1.0, 4.0, 16)
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Buckets are defined by ascending upper bounds; an implicit
/// overflow bucket catches everything above the last bound. Recording
/// is lock-free (relaxed atomics); `sum`/`min`/`max` are maintained
/// with CAS loops over the value's bit pattern.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // bounds.len() + 1 (overflow)
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Histogram over ascending upper `bounds`.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        Self::fetch_update(&self.sum_bits, |s| s + v);
        Self::fetch_update(&self.min_bits, |m| m.min(v));
        Self::fetch_update(&self.max_bits, |m| m.max(v));
    }

    fn fetch_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let per_bucket: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: per_bucket,
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
        }
    }
}

/// Frozen view of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one extra overflow bucket at the end.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the
    /// bucket containing the `q`-th observation, clamped to the exact
    /// observed `[min, max]`. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let ub = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
                return ub.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 5000.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // <=1, <=10, <=100, overflow
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 5000.0);
        assert!((s.sum - 5056.5).abs() < 1e-9);
    }

    #[test]
    fn ignores_non_finite() {
        let h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_bracket_distribution() {
        let h = Histogram::new(&buckets::exponential(1.0, 2.0, 12));
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((256.0..=1024.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= p50);
        assert!(p99 <= s.max);
        assert_eq!(s.quantile(0.0).max(1.0), 1.0);
        assert_eq!(s.quantile(1.0), 1000.0);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new(&[1.0]).snapshot();
        assert_eq!(
            (s.count, s.min, s.max, s.mean(), s.quantile(0.5)),
            (0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn standard_layouts_are_sane() {
        assert_eq!(buckets::exponential(1.0, 10.0, 3), vec![1.0, 10.0, 100.0]);
        assert_eq!(buckets::linear(0.5, 0.5, 3), vec![0.5, 1.0, 1.5]);
        assert!(buckets::latency_ns().len() > 16);
        assert_eq!(buckets::unit().len(), 20);
        assert!(buckets::counts().starts_with(&[1.0, 10.0]));
        let wide = buckets::counts_wide();
        assert!(wide.starts_with(&[1.0, 4.0, 16.0]));
        assert!(
            *wide.last().unwrap() >= 1e6,
            "wide counts must cover million-sample stores"
        );
    }
}
