//! # exbox-obs — observability substrate for the ExBox reproduction
//!
//! ExBox's premise is a middlebox that *measures itself*: per-flow
//! QoS meters, IQX-estimated QoE, and an online classifier whose
//! retrains are themselves part of the control loop (paper §4). This
//! crate is the telemetry layer those components report into — and
//! the layer every performance PR measures itself with.
//!
//! Hand-rolled with **zero external dependencies** (the build must
//! succeed offline; see `REPRODUCING.md`):
//!
//! * [`Counter`] — a monotonically increasing atomic counter.
//! * [`Gauge`] — a last-write-wins `f64` cell (CV accuracy, fit RMSE).
//! * [`Histogram`] — fixed-bucket distribution with atomic buckets,
//!   exact min/max and quantile estimates ([`buckets`] has standard
//!   bucket layouts: exponential latency ladders, linear grids).
//! * [`EventRing`] — a bounded ring-buffer event log that keeps the
//!   most recent `N` structured events and counts what it evicted
//!   (the middlebox's admission-decision audit trail lives in one).
//! * [`MetricsRegistry`] — names the above, hands out shared handles,
//!   and exports point-in-time [`MetricsSnapshot`]s as JSON, CSV, or
//!   aligned text. A process-wide registry is available via
//!   [`global()`]; every bench binary dumps it to stderr on exit so
//!   `results/*.log` carries the full counter state of the run.
//!
//! Metric names are dot-namespaced by component
//! (`middlebox.admitted`, `admittance.retrain_wall_ns`, …); the
//! README's *Metrics reference* section lists every name the
//! workspace emits.
//!
//! ## Example
//!
//! ```
//! use exbox_obs::{buckets, MetricsRegistry};
//!
//! let reg = MetricsRegistry::new();
//! let admits = reg.counter("middlebox.admitted");
//! let lat = reg.histogram("middlebox.decision_latency_ns", &buckets::latency_ns());
//! admits.inc();
//! lat.record(12_500.0);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("middlebox.admitted"), Some(1));
//! assert!(snap.to_json().contains("decision_latency_ns"));
//! ```

mod hist;
mod registry;
mod ring;
mod sync;

pub use hist::{buckets, Histogram, HistogramSnapshot};
pub use registry::{global, MetricsRegistry, MetricsSnapshot};
pub use ring::EventRing;

use crate::sync::{AtomicU64, Ordering};
use std::time::Instant as WallInstant;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` cell (stored as atomic bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Run `f`, returning its result and the elapsed wall time in
/// nanoseconds — the unit every `*_wall_ns` / `*_latency_ns`
/// histogram in the workspace records.
pub fn time_ns<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = WallInstant::now();
    let out = f();
    (out, start.elapsed().as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_overwrites() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.875);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn time_ns_measures_something() {
        let (out, ns) = time_ns(|| (0..1000u64).sum::<u64>());
        assert_eq!(out, 499_500);
        assert!(ns >= 0.0);
    }
}
