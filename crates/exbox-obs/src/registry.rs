//! Named metric registry and snapshot export.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::{Counter, Gauge};

/// Names counters, gauges and histograms and hands out shared
/// handles. Asking for an existing name returns the existing
/// instrument, so independent components (or multiple instances of
/// one component) naturally aggregate into the same metric.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.counters.lock().expect("registry poisoned");
        Arc::clone(
            g.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.gauges.lock().expect("registry poisoned");
        Arc::clone(
            g.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the histogram `name`. The bucket `bounds` apply
    /// only on first creation; later callers share the existing
    /// instrument unchanged.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut g = self.histograms.lock().expect("registry poisoned");
        Arc::clone(
            g.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide default registry. Components bind to it unless
/// constructed with an explicit registry; bench binaries dump it on
/// exit.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// A frozen, ordered view of a registry. All export formats list
/// metrics in lexicographic name order, so diffs between runs are
/// stable.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl MetricsSnapshot {
    /// Merge several snapshots into one aggregate view — how the
    /// concurrent gateway exports its per-shard sub-registries (each
    /// shard increments its own instruments contention-free; the sums
    /// only materialise here, at export time).
    ///
    /// Semantics per metric kind:
    /// * **counters** — summed by name (exact: each shard's verdict
    ///   tally adds up to the fleet total);
    /// * **histograms** — merged bucket-wise (counts element-wise,
    ///   `count`/`sum` added, `min`/`max` combined), which is exact
    ///   because every shard binds the same code and therefore the
    ///   same bucket bounds;
    /// * **gauges** — the maximum across parts (a gauge is a
    ///   point-in-time level, not a flow; max is the deterministic
    ///   choice that never under-reports).
    ///
    /// # Panics
    /// Panics when two parts carry the same histogram name with
    /// different bucket bounds — merging those would corrupt
    /// quantiles, and it can only happen through a programming error.
    pub fn merged<'a, I>(parts: I) -> MetricsSnapshot
    where
        I: IntoIterator<Item = &'a MetricsSnapshot>,
    {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for part in parts {
            for (name, v) in &part.counters {
                *counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, v) in &part.gauges {
                gauges
                    .entry(name.clone())
                    .and_modify(|cur| *cur = cur.max(*v))
                    .or_insert(*v);
            }
            for (name, h) in &part.histograms {
                match histograms.entry(name.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(h.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let acc = e.get_mut();
                        assert_eq!(
                            acc.bounds, h.bounds,
                            "histogram `{name}` merged across mismatched bucket bounds"
                        );
                        for (a, b) in acc.counts.iter_mut().zip(&h.counts) {
                            *a += b;
                        }
                        acc.count += h.count;
                        acc.sum += h.sum;
                        if h.count > 0 {
                            if acc.count == h.count {
                                // Accumulator was empty until now.
                                acc.min = h.min;
                                acc.max = h.max;
                            } else {
                                acc.min = acc.min.min(h.min);
                                acc.max = acc.max.max(h.max);
                            }
                        }
                    }
                }
            }
        }
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialize as a single JSON object:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,min,max,mean,p50,p95,p99,buckets:[[le,n],…]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), json_num(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                json_num(h.sum),
                json_num(h.min),
                json_num(h.max),
                json_num(h.mean()),
                json_num(h.quantile(0.50)),
                json_num(h.quantile(0.95)),
                json_num(h.quantile(0.99)),
            );
            for (j, &c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let le = h
                    .bounds
                    .get(j)
                    .copied()
                    .map(json_num)
                    .unwrap_or_else(|| "null".into());
                let _ = write!(out, "[{le},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Serialize as CSV with header `metric,kind,value`; histograms
    /// expand into `count/mean/min/max/p50/p95/p99` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,value\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name},counter,{v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name},gauge,{v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "{name}.count,histogram,{}", h.count);
            let _ = writeln!(out, "{name}.mean,histogram,{}", h.mean());
            let _ = writeln!(out, "{name}.min,histogram,{}", h.min);
            let _ = writeln!(out, "{name}.max,histogram,{}", h.max);
            let _ = writeln!(out, "{name}.p50,histogram,{}", h.quantile(0.50));
            let _ = writeln!(out, "{name}.p95,histogram,{}", h.quantile(0.95));
            let _ = writeln!(out, "{name}.p99,histogram,{}", h.quantile(0.99));
        }
        out
    }

    /// Human-readable aligned text block (what bench binaries print
    /// to stderr on exit).
    pub fn render(&self) -> String {
        let mut out = String::from("== metrics snapshot ==\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<44} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<44} {v:.6}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<44} n={} mean={:.1} p50={:.1} p95={:.1} max={:.1}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.max,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets;

    #[test]
    fn same_name_shares_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").inc();
        reg.counter("a.b").inc();
        assert_eq!(reg.snapshot().counter("a.b"), Some(2));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(3);
        reg.gauge("m.acc").set(0.75);
        reg.histogram("h.lat", &buckets::latency_ns())
            .record(2_000.0);
        let s = reg.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        assert_eq!(s.gauge("m.acc"), Some(0.75));
        assert_eq!(s.histogram("h.lat").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn json_export_is_wellformed() {
        let reg = MetricsRegistry::new();
        reg.counter("c\"tricky").inc();
        reg.gauge("g").set(1.5);
        reg.histogram("h", &[1.0, 2.0]).record(1.5);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\\\"tricky\":1"));
        assert!(json.contains("\"g\":1.5"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"buckets\":[[1,0],[2,1],[null,0]]"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let reg = MetricsRegistry::new();
        reg.counter("admitted").add(7);
        reg.histogram("lat", &[10.0]).record(5.0);
        let csv = reg.snapshot().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("metric,kind,value"));
        assert!(csv.contains("admitted,counter,7"));
        assert!(csv.contains("lat.count,histogram,1"));
        assert!(csv.contains("lat.p95,histogram,"));
    }

    #[test]
    fn render_mentions_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("one").inc();
        reg.gauge("two").set(2.0);
        reg.histogram("three", &[1.0]).record(0.5);
        let text = reg.snapshot().render();
        for name in ["one", "two", "three"] {
            assert!(text.contains(name), "missing {name} in {text}");
        }
    }

    #[test]
    fn merged_sums_counters_and_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("mb.admits").add(3);
        b.counter("mb.admits").add(4);
        b.counter("mb.rejects").add(2);
        a.gauge("acc").set(0.5);
        b.gauge("acc").set(0.9);
        a.histogram("lat", &[10.0, 100.0]).record(5.0);
        a.histogram("lat", &[10.0, 100.0]).record(50.0);
        b.histogram("lat", &[10.0, 100.0]).record(500.0);
        let m = MetricsSnapshot::merged([&a.snapshot(), &b.snapshot()]);
        assert_eq!(m.counter("mb.admits"), Some(7));
        assert_eq!(m.counter("mb.rejects"), Some(2));
        assert_eq!(m.gauge("acc"), Some(0.9));
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.sum, 555.0);
        assert_eq!((h.min, h.max), (5.0, 500.0));
    }

    #[test]
    fn merged_empty_histogram_does_not_poison_min_max() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.histogram("lat", &[10.0]); // registered, never recorded
        b.histogram("lat", &[10.0]).record(4.0);
        let m = MetricsSnapshot::merged([&a.snapshot(), &b.snapshot()]);
        let h = m.histogram("lat").unwrap();
        assert_eq!((h.count, h.min, h.max), (1, 4.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "mismatched bucket bounds")]
    fn merged_rejects_mismatched_bounds() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.histogram("lat", &[10.0]);
        b.histogram("lat", &[20.0]);
        let _ = MetricsSnapshot::merged([&a.snapshot(), &b.snapshot()]);
    }

    #[test]
    fn global_is_a_singleton() {
        let c = global().counter("obs.selftest");
        let before = c.get();
        global().counter("obs.selftest").inc();
        assert_eq!(c.get(), before + 1);
    }
}
