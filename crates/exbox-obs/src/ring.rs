//! Bounded ring-buffer event log.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded event log keeping the most recent `capacity` events.
///
/// When full, pushing evicts the oldest event and counts it as
/// dropped, so the log can answer both "what happened recently" and
/// "how much history did I lose". The middlebox's admission-decision
/// audit trail is an `EventRing<DecisionEvent>`.
#[derive(Debug)]
pub struct EventRing<T> {
    inner: Mutex<RingInner<T>>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner<T> {
    buf: VecDeque<T>,
    evicted: u64,
    pushed: u64,
}

impl<T: Clone> EventRing<T> {
    /// Ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                evicted: 0,
                pushed: 0,
            }),
            capacity,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: T) {
        let mut g = self.inner.lock().expect("event ring poisoned");
        if g.buf.len() == self.capacity {
            g.buf.pop_front();
            g.evicted += 1;
        }
        g.buf.push_back(event);
        g.pushed += 1;
    }

    /// Oldest-to-newest copy of the retained events.
    pub fn snapshot(&self) -> Vec<T> {
        let g = self.inner.lock().expect("event ring poisoned");
        g.buf.iter().cloned().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event ring poisoned").buf.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted to make room (total history lost).
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").evicted
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().expect("event ring poisoned").pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent() {
        let r = EventRing::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.snapshot(), vec![2, 3, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.total_pushed(), 5);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let r = EventRing::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.snapshot(), vec!["a", "b"]);
        assert_eq!(r.evicted(), 0);
        assert!(!r.is_empty());
        assert_eq!(r.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: EventRing<u8> = EventRing::new(0);
    }
}
