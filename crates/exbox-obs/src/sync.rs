//! cfg-selected atomics: `std` by default, the `exbox-loom` shims
//! under `--cfg exbox_loom`.
//!
//! The hot-path instruments ([`crate::Counter`], [`crate::Gauge`],
//! [`crate::Histogram`]) route their atomics through this module so
//! the interleaving explorer can drive metric updates like any other
//! shared state: a gateway model that increments `gateway.obs_dropped`
//! from two shards explores the increments' interleavings too, and the
//! differential suite proves the shims behave identically to `std`
//! outside a model. `MetricsRegistry` and `EventRing` stay on plain
//! `std` locks — they are registration/export bookkeeping, never part
//! of a modelled protocol.

#[cfg(not(exbox_loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(exbox_loom)]
pub(crate) use exbox_loom::sync::{AtomicU64, Ordering};
