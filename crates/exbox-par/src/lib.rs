//! # exbox-par — deterministic data parallelism for the ExBox workspace
//!
//! The Admittance Classifier's retraining loop is the paper's own
//! scaling worry (§5.3 blames training latency for limiting batch
//! rates), and the dominant costs are embarrassingly parallel: Gram
//! matrix rows, cross-validation folds, traffic-matrix grid sweeps and
//! batch prediction. This crate provides the one primitive all of them
//! need — a fork/join map over an index range — with three hard
//! guarantees the figure pipeline depends on:
//!
//! 1. **Deterministic results.** `parallel_map(n, f)` returns
//!    `[f(0), f(1), …, f(n-1)]` in index order, whatever the thread
//!    count or scheduling. For pure `f` the output is *byte-identical*
//!    across thread counts, which is what keeps `results/*.csv`
//!    reproducible under any `EXBOX_THREADS`.
//! 2. **Serial degradation.** A pool with one thread (or `n < 2`)
//!    runs `f` inline on the caller, in index order — *exact* serial
//!    semantics, side effects included.
//! 3. **Zero dependencies.** Scoped [`std::thread`] workers only (the
//!    workspace builds offline; no rayon), no `unsafe`.
//!
//! Worker threads pull contiguous index *chunks* from a shared atomic
//! cursor (dynamic scheduling, so ragged workloads like triangular
//! Gram rows balance), compute into thread-local buffers, and the
//! caller reassembles the chunks in index order. Each claimed chunk
//! increments the `par.tasks` counter on the global
//! [`exbox_obs`] registry.
//!
//! Nested calls degrade gracefully: a `parallel_map` issued from
//! inside a pool worker runs serially inline (no thread explosion
//! when e.g. a parallel cross-validation fold trains an SVM whose
//! Gram build is itself parallel).
//!
//! Alongside the scoped fork/join pool there is a **persistent
//! work-queue mode**, [`WorkerPool`]: long-lived workers with
//! per-worker FIFO queues, used by the concurrent gateway to give
//! every shard a dedicated serving thread (jobs for one shard never
//! migrate, so shard state needs no locking beyond the queue).
//!
//! ## Example
//!
//! ```
//! use exbox_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use exbox_obs::Counter;

/// cfg-selected sync layer for the [`WorkerPool`] job queues: `std` by
/// default, the `exbox-loom` shims under `--cfg exbox_loom` so the
/// queue protocol (submit → pop → execute → barrier) is exhaustively
/// model-checked. The scoped fork/join [`ThreadPool`] stays on plain
/// `std`: scoped threads are joined before `parallel_map` returns, so
/// there is no cross-call protocol to model.
mod sync {
    #[cfg(not(exbox_loom))]
    pub(crate) use std::sync::{Condvar, Mutex};
    #[cfg(not(exbox_loom))]
    pub(crate) use std::thread;

    #[cfg(exbox_loom)]
    pub(crate) use exbox_loom::sync::{Condvar, Mutex};
    #[cfg(exbox_loom)]
    pub(crate) use exbox_loom::thread;
}

thread_local! {
    /// Set while the current thread is an exbox-par worker; nested
    /// parallel calls check it and run inline instead of re-spawning.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Shared parser for the workspace's environment knobs
/// (`EXBOX_THREADS`, `EXBOX_DECISION_CACHE`, …): trim whitespace,
/// parse, then apply the knob's validity predicate. Anything invalid —
/// empty, non-numeric, overflowing, or rejected by `valid` — warns
/// once on stderr and returns `None`, so every knob degrades the same
/// way: the caller keeps its built-in default.
///
/// Lives here (the lowest crate every knob user already depends on)
/// so the behaviour cannot drift between crates again.
pub fn parse_env_knob<T: std::str::FromStr>(
    name: &str,
    raw: &str,
    valid: impl Fn(&T) -> bool,
) -> Option<T> {
    match raw.trim().parse::<T>() {
        Ok(v) if valid(&v) => Some(v),
        _ => {
            eprintln!("exbox: ignoring invalid {name}={raw:?}");
            None
        }
    }
}

/// `par.tasks` — chunks of work claimed by pool workers, process-wide.
fn tasks_counter() -> &'static Arc<Counter> {
    static TASKS: OnceLock<Arc<Counter>> = OnceLock::new();
    TASKS.get_or_init(|| exbox_obs::global().counter("par.tasks"))
}

/// Pads and aligns `T` to a 128-byte boundary so two neighbouring
/// values never share a cache line (128 covers the spatial-prefetcher
/// pairing on x86 and the 128-byte lines on some AArch64 parts).
///
/// Used by the gateway's SPSC ingress rings and order gate, where a
/// producer-written index sitting next to a consumer-written index
/// would otherwise ping-pong one line between cores on every packet.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap, consuming the padding.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// A scoped thread pool: a thread-count policy plus fork/join
/// primitives. Workers are scoped [`std::thread`]s spawned per call
/// and joined before the call returns, so borrowed data flows into
/// closures freely and no state outlives the call.
///
/// The type is `Copy`: it carries only the thread count, so trainers
/// and harnesses can embed one without lifetime or cloning concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that uses up to `threads` OS threads per call.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one thread");
        ThreadPool { threads }
    }

    /// A single-threaded pool: every call runs inline on the caller
    /// with exact serial semantics. Use this to force deterministic
    /// serial runs regardless of `EXBOX_THREADS`.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// The process-default pool: `EXBOX_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`]. The
    /// environment variable is read once; later changes are ignored.
    pub fn global() -> Self {
        static GLOBAL: OnceLock<usize> = OnceLock::new();
        let threads = *GLOBAL.get_or_init(|| {
            if let Ok(v) = std::env::var("EXBOX_THREADS") {
                if let Some(n) = parse_env_knob::<usize>("EXBOX_THREADS", &v, |n| *n >= 1) {
                    return n;
                }
            }
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
        ThreadPool { threads }
    }

    /// Number of threads this pool will use at most.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every index in `0..n`, returning results in index
    /// order. Deterministic: for pure `f` the output is independent
    /// of the thread count; with one thread (or from inside a pool
    /// worker) `f` runs inline in index order.
    pub fn parallel_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 || IN_POOL.with(Cell::get) {
            tasks_counter().add(u64::from(n > 0));
            return (0..n).map(f).collect();
        }

        // Dynamic chunked scheduling: small enough chunks that ragged
        // per-index costs balance, large enough to amortise the
        // cursor fetch.
        let chunk = (n / (workers * 4)).max(1);
        let cursor = AtomicUsize::new(0);
        let pieces: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL.with(|flag| flag.set(true));
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    let mut claimed = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        claimed += 1;
                        let end = (start + chunk).min(n);
                        local.push((start, (start..end).map(&f).collect()));
                    }
                    tasks_counter().add(claimed);
                    pieces
                        .lock()
                        .expect("exbox-par result mutex poisoned")
                        .append(&mut local);
                    IN_POOL.with(|flag| flag.set(false));
                });
            }
        });

        let mut pieces = pieces
            .into_inner()
            .expect("exbox-par result mutex poisoned");
        pieces.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, mut piece) in pieces {
            out.append(&mut piece);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Run `f` for every index in `0..n` for its side effects.
    /// Ordering across threads is unspecified, but with one thread
    /// (or nested inside a worker) indices run in order — exact
    /// serial semantics.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_map(n, &f);
    }
}

impl Default for ThreadPool {
    /// [`ThreadPool::global`].
    fn default() -> Self {
        ThreadPool::global()
    }
}

/// A boxed unit of work for a [`WorkerPool`] worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

enum WorkerMsg {
    Run(Job),
    Shutdown,
}

impl std::fmt::Debug for WorkerMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkerMsg::Run(_) => "Run",
            WorkerMsg::Shutdown => "Shutdown",
        })
    }
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<WorkerMsg>,
    /// `Run` jobs enqueued so far (monotone; drives [`JobQueue::wait_executed`]).
    submitted: u64,
    /// `Run` jobs completed so far (monotone).
    executed: u64,
    /// Set when the worker exits — clean shutdown or a panicking job —
    /// so later submits fail fast instead of queueing to nobody.
    closed: bool,
}

/// One worker's FIFO job queue, on the cfg-selected [`sync`] layer so
/// the whole submit/pop/barrier protocol is model-checkable under
/// `--cfg exbox_loom` (see the `loom_models` test module).
///
/// Replaces the per-worker `std::sync::mpsc` channel the pool used
/// before PR 9: same FIFO and disconnect semantics, but every blocking
/// edge is an explorable switch point, and the drain barrier is a
/// counter comparison instead of an ack channel — `barrier` waits
/// until each queue has *executed* everything *submitted* before the
/// call, and panics (like the old `recv().expect`) if a worker died
/// with jobs still owed.
#[derive(Debug)]
struct JobQueue {
    state: sync::Mutex<QueueState>,
    /// Wakes the worker: a new message is queued.
    ready: sync::Condvar,
    /// Wakes `barrier` callers: a job finished or the worker exited.
    drained: sync::Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            state: sync::Mutex::new(QueueState {
                jobs: VecDeque::new(),
                submitted: 0,
                executed: 0,
                closed: false,
            }),
            ready: sync::Condvar::new(),
            drained: sync::Condvar::new(),
        }
    }

    /// Enqueue a message; `false` once the worker is gone.
    fn push(&self, msg: WorkerMsg) -> bool {
        let mut st = self.state.lock().expect("worker queue poisoned");
        if st.closed {
            return false;
        }
        if matches!(msg, WorkerMsg::Run(_)) {
            st.submitted += 1;
        }
        st.jobs.push_back(msg);
        drop(st);
        self.ready.notify_one();
        true
    }

    /// Blocking dequeue (worker side).
    fn pop(&self) -> WorkerMsg {
        let mut st = self.state.lock().expect("worker queue poisoned");
        loop {
            if let Some(msg) = st.jobs.pop_front() {
                return msg;
            }
            st = self.ready.wait(st).expect("worker queue poisoned");
        }
    }

    /// Worker-side: one `Run` job finished.
    fn job_done(&self) {
        let mut st = self.state.lock().expect("worker queue poisoned");
        st.executed += 1;
        drop(st);
        self.drained.notify_all();
    }

    /// Worker-side: the worker is exiting (normally or unwinding).
    fn close(&self) {
        let mut st = self.state.lock().expect("worker queue poisoned");
        st.closed = true;
        drop(st);
        self.drained.notify_all();
    }

    /// `Run` jobs submitted so far (the barrier's drain target).
    fn submitted(&self) -> u64 {
        self.state.lock().expect("worker queue poisoned").submitted
    }

    /// Block until `executed >= target`.
    ///
    /// # Panics
    /// Panics if the worker exits before reaching `target` — a job
    /// panicked and the jobs owed to the barrier will never run.
    fn wait_executed(&self, target: u64) {
        let mut st = self.state.lock().expect("worker queue poisoned");
        while st.executed < target {
            assert!(!st.closed, "worker died before barrier");
            st = self.drained.wait(st).expect("worker queue poisoned");
        }
    }
}

/// Closes the owning queue when the worker exits, even by unwinding.
struct CloseOnExit(Arc<JobQueue>);

impl Drop for CloseOnExit {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The persistent work-queue mode: long-lived worker threads, each
/// with its own FIFO queue, addressed by index.
///
/// Where [`ThreadPool`] forks scoped workers per call and joins them
/// before returning (right for fork/join maps like the Gram build),
/// `WorkerPool` keeps its threads alive across submissions — the shape
/// the concurrent gateway's shard serving loop needs: shard `i`'s
/// packets always go to queue `i % workers`, so one shard's state is
/// only ever touched from one worker thread and jobs for the same
/// shard run in submission order. [`WorkerPool::barrier`] waits until
/// every queue has drained past the jobs submitted so far.
///
/// Dropping the pool shuts the workers down and joins them. A job
/// that panics poisons nothing here, but the panic is re-raised on
/// the pool thread's join during drop (fail fast, never silently lose
/// work).
///
/// Like the rest of this crate: cfg-selected locks and threads only
/// (`std` outside model builds), no `unsafe`.
#[derive(Debug)]
pub struct WorkerPool {
    queues: Vec<Arc<JobQueue>>,
    handles: Vec<sync::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` long-lived worker threads (at least one), each
    /// owning one FIFO job queue.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = Arc::new(JobQueue::new());
            let worker_queue = Arc::clone(&queue);
            let handle = sync::thread::Builder::new()
                .name(format!("exbox-worker-{i}"))
                .spawn(move || {
                    IN_POOL.with(|flag| flag.set(true));
                    let _closer = CloseOnExit(Arc::clone(&worker_queue));
                    while let WorkerMsg::Run(job) = worker_queue.pop() {
                        tasks_counter().inc();
                        job();
                        worker_queue.job_done();
                    }
                })
                .expect("failed to spawn worker thread");
            queues.push(queue);
            handles.push(handle);
        }
        WorkerPool { queues, handles }
    }

    /// Number of worker threads (and queues).
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Enqueue `job` on worker `worker % workers`. Jobs submitted to
    /// the same worker run on the same thread, in submission order.
    pub fn submit(&self, worker: usize, job: impl FnOnce() + Send + 'static) {
        let idx = worker % self.queues.len();
        assert!(
            self.queues[idx].push(WorkerMsg::Run(Box::new(job))),
            "worker thread gone"
        );
    }

    /// Block until every worker has finished all jobs submitted before
    /// this call (a drain barrier, not a shutdown).
    pub fn barrier(&self) {
        // Snapshot every drain target first, then wait: a job that
        // submits to a *later* queue while we wait on an earlier one
        // must not extend the barrier.
        let targets: Vec<u64> = self.queues.iter().map(|q| q.submitted()).collect();
        for (q, target) in self.queues.iter().zip(targets) {
            q.wait_executed(target);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for q in &self.queues {
            // A worker that already died (panicked job) has closed its
            // queue; the join below re-raises its panic.
            let _ = q.push(WorkerMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            if let Err(panic) = handle.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Interleaving models for the [`WorkerPool`] queue protocol. Only
/// built under `--cfg exbox_loom`; run with
/// `RUSTFLAGS='--cfg exbox_loom' cargo test -p exbox-par --lib`.
#[cfg(all(test, exbox_loom))]
mod loom_models {
    use super::*;

    /// Submit → barrier against one worker: the barrier must not
    /// return before every submitted job executed, under every
    /// interleaving of the submitter and the worker.
    #[test]
    fn barrier_observes_all_prior_jobs() {
        exbox_loom::model(|| {
            let pool = WorkerPool::new(1);
            let hits = Arc::new(Mutex::new(0u32));
            for _ in 0..2 {
                let hits = Arc::clone(&hits);
                pool.submit(0, move || {
                    *hits.lock().unwrap() += 1;
                });
            }
            pool.barrier();
            assert_eq!(*hits.lock().unwrap(), 2, "barrier returned early");
            drop(pool);
        });
    }

    /// Two workers, one job each: jobs never migrate queues, each runs
    /// exactly once, and pool drop joins both workers cleanly in every
    /// schedule.
    #[test]
    fn two_workers_run_disjoint_jobs_once() {
        exbox_loom::model(|| {
            let pool = WorkerPool::new(2);
            let hits = Arc::new(Mutex::new([0u32; 2]));
            for w in 0..2 {
                let hits = Arc::clone(&hits);
                pool.submit(w, move || {
                    hits.lock().unwrap()[w] += 1;
                });
            }
            pool.barrier();
            assert_eq!(*hits.lock().unwrap(), [1, 1]);
            drop(pool);
        });
    }

    /// Dropping the pool with a job still queued: the job runs before
    /// the shutdown message (FIFO), never lost.
    #[test]
    fn drop_drains_queued_jobs() {
        exbox_loom::model(|| {
            let ran = Arc::new(Mutex::new(false));
            {
                let pool = WorkerPool::new(1);
                let ran = Arc::clone(&ran);
                pool.submit(0, move || {
                    *ran.lock().unwrap() = true;
                });
            }
            assert!(*ran.lock().unwrap(), "queued job lost on drop");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.parallel_map(100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_is_bitwise_deterministic_across_thread_counts() {
        let f = |i: usize| ((i as f64) * 0.1).sin().exp();
        let serial: Vec<u64> = ThreadPool::serial()
            .parallel_map(500, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 5, 8] {
            let par: Vec<u64> = ThreadPool::new(threads)
                .parallel_map(500, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(serial, par, "thread count {threads} changed bits");
        }
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn for_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        ThreadPool::new(8).parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map(8, |i| {
            // Inner call from a worker must not deadlock or explode;
            // it runs serially inline.
            pool.parallel_map(4, move |j| i * 10 + j)
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn single_thread_runs_on_caller_in_order() {
        // Side-effect order is the serial order for a 1-thread pool.
        let seen = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        ThreadPool::serial().parallel_for(10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_counter_advances() {
        let before = exbox_obs::global()
            .snapshot()
            .counter("par.tasks")
            .unwrap_or(0);
        ThreadPool::new(2).parallel_map(64, |i| i);
        let after = exbox_obs::global()
            .snapshot()
            .counter("par.tasks")
            .unwrap_or(0);
        assert!(after > before, "par.tasks did not advance");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn worker_pool_runs_jobs_in_submission_order_per_worker() {
        let pool = WorkerPool::new(2);
        let log: Arc<Mutex<Vec<(usize, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        for seq in 0..50usize {
            for worker in 0..2usize {
                let log = Arc::clone(&log);
                pool.submit(worker, move || {
                    log.lock().unwrap().push((worker, seq));
                });
            }
        }
        pool.barrier();
        let log = log.lock().unwrap();
        for worker in 0..2usize {
            let seqs: Vec<usize> = log
                .iter()
                .filter(|(w, _)| *w == worker)
                .map(|&(_, s)| s)
                .collect();
            assert_eq!(
                seqs,
                (0..50).collect::<Vec<_>>(),
                "worker {worker} reordered"
            );
        }
    }

    #[test]
    fn worker_pool_pins_a_worker_index_to_one_thread() {
        let pool = WorkerPool::new(3);
        let ids: Arc<Mutex<Vec<std::thread::ThreadId>>> = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..20 {
            let ids = Arc::clone(&ids);
            pool.submit(1, move || {
                ids.lock().unwrap().push(std::thread::current().id());
            });
        }
        pool.barrier();
        let ids = ids.lock().unwrap();
        assert_eq!(ids.len(), 20);
        assert!(ids.iter().all(|&id| id == ids[0]), "jobs migrated threads");
    }

    #[test]
    fn worker_pool_barrier_waits_for_all_queues() {
        let pool = WorkerPool::new(4);
        let done = Arc::new(AtomicU64::new(0));
        for worker in 0..4usize {
            let done = Arc::clone(&done);
            pool.submit(worker, move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.barrier();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_pool_nested_parallel_map_runs_inline() {
        // A fork/join map issued from a worker must not spawn more
        // threads (IN_POOL is set on workers).
        let pool = WorkerPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(0, move || {
            let out = ThreadPool::new(8).parallel_map(4, |i| i * 2);
            tx.send(out).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), vec![0, 2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn env_knob_accepts_valid_values() {
        assert_eq!(parse_env_knob::<usize>("K", "8", |_| true), Some(8));
        // Surrounding whitespace is tolerated.
        assert_eq!(parse_env_knob::<usize>("K", "  8 \n", |_| true), Some(8));
        // Zero is valid where the predicate allows it
        // (EXBOX_DECISION_CACHE=0 legitimately disables the cache).
        assert_eq!(parse_env_knob::<usize>("K", "0", |_| true), Some(0));
    }

    #[test]
    fn env_knob_rejects_invalid_values() {
        // Zero where the knob requires a positive value (EXBOX_THREADS).
        assert_eq!(parse_env_knob::<usize>("K", "0", |n| *n >= 1), None);
        // Whitespace-only, empty, garbage.
        assert_eq!(parse_env_knob::<usize>("K", "   ", |_| true), None);
        assert_eq!(parse_env_knob::<usize>("K", "", |_| true), None);
        assert_eq!(parse_env_knob::<usize>("K", "eight", |_| true), None);
        // Overflow and negatives for unsigned knobs.
        assert_eq!(
            parse_env_knob::<usize>("K", "99999999999999999999999999", |_| true),
            None
        );
        assert_eq!(parse_env_knob::<usize>("K", "-3", |_| true), None);
        // Trailing junk after the number.
        assert_eq!(parse_env_knob::<usize>("K", "8 threads", |_| true), None);
    }
}
