//! # exbox-par — deterministic data parallelism for the ExBox workspace
//!
//! The Admittance Classifier's retraining loop is the paper's own
//! scaling worry (§5.3 blames training latency for limiting batch
//! rates), and the dominant costs are embarrassingly parallel: Gram
//! matrix rows, cross-validation folds, traffic-matrix grid sweeps and
//! batch prediction. This crate provides the one primitive all of them
//! need — a fork/join map over an index range — with three hard
//! guarantees the figure pipeline depends on:
//!
//! 1. **Deterministic results.** `parallel_map(n, f)` returns
//!    `[f(0), f(1), …, f(n-1)]` in index order, whatever the thread
//!    count or scheduling. For pure `f` the output is *byte-identical*
//!    across thread counts, which is what keeps `results/*.csv`
//!    reproducible under any `EXBOX_THREADS`.
//! 2. **Serial degradation.** A pool with one thread (or `n < 2`)
//!    runs `f` inline on the caller, in index order — *exact* serial
//!    semantics, side effects included.
//! 3. **Zero dependencies.** Scoped [`std::thread`] workers only (the
//!    workspace builds offline; no rayon), no `unsafe`.
//!
//! Worker threads pull contiguous index *chunks* from a shared atomic
//! cursor (dynamic scheduling, so ragged workloads like triangular
//! Gram rows balance), compute into thread-local buffers, and the
//! caller reassembles the chunks in index order. Each claimed chunk
//! increments the `par.tasks` counter on the global
//! [`exbox_obs`] registry.
//!
//! Nested calls degrade gracefully: a `parallel_map` issued from
//! inside a pool worker runs serially inline (no thread explosion
//! when e.g. a parallel cross-validation fold trains an SVM whose
//! Gram build is itself parallel).
//!
//! ## Example
//!
//! ```
//! use exbox_par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.parallel_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use exbox_obs::Counter;

thread_local! {
    /// Set while the current thread is an exbox-par worker; nested
    /// parallel calls check it and run inline instead of re-spawning.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Shared parser for the workspace's environment knobs
/// (`EXBOX_THREADS`, `EXBOX_DECISION_CACHE`, …): trim whitespace,
/// parse, then apply the knob's validity predicate. Anything invalid —
/// empty, non-numeric, overflowing, or rejected by `valid` — warns
/// once on stderr and returns `None`, so every knob degrades the same
/// way: the caller keeps its built-in default.
///
/// Lives here (the lowest crate every knob user already depends on)
/// so the behaviour cannot drift between crates again.
pub fn parse_env_knob<T: std::str::FromStr>(
    name: &str,
    raw: &str,
    valid: impl Fn(&T) -> bool,
) -> Option<T> {
    match raw.trim().parse::<T>() {
        Ok(v) if valid(&v) => Some(v),
        _ => {
            eprintln!("exbox: ignoring invalid {name}={raw:?}");
            None
        }
    }
}

/// `par.tasks` — chunks of work claimed by pool workers, process-wide.
fn tasks_counter() -> &'static Arc<Counter> {
    static TASKS: OnceLock<Arc<Counter>> = OnceLock::new();
    TASKS.get_or_init(|| exbox_obs::global().counter("par.tasks"))
}

/// A scoped thread pool: a thread-count policy plus fork/join
/// primitives. Workers are scoped [`std::thread`]s spawned per call
/// and joined before the call returns, so borrowed data flows into
/// closures freely and no state outlives the call.
///
/// The type is `Copy`: it carries only the thread count, so trainers
/// and harnesses can embed one without lifetime or cloning concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool that uses up to `threads` OS threads per call.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one thread");
        ThreadPool { threads }
    }

    /// A single-threaded pool: every call runs inline on the caller
    /// with exact serial semantics. Use this to force deterministic
    /// serial runs regardless of `EXBOX_THREADS`.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// The process-default pool: `EXBOX_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`]. The
    /// environment variable is read once; later changes are ignored.
    pub fn global() -> Self {
        static GLOBAL: OnceLock<usize> = OnceLock::new();
        let threads = *GLOBAL.get_or_init(|| {
            if let Ok(v) = std::env::var("EXBOX_THREADS") {
                if let Some(n) = parse_env_knob::<usize>("EXBOX_THREADS", &v, |n| *n >= 1) {
                    return n;
                }
            }
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
        ThreadPool { threads }
    }

    /// Number of threads this pool will use at most.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every index in `0..n`, returning results in index
    /// order. Deterministic: for pure `f` the output is independent
    /// of the thread count; with one thread (or from inside a pool
    /// worker) `f` runs inline in index order.
    pub fn parallel_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 || IN_POOL.with(Cell::get) {
            tasks_counter().add(u64::from(n > 0));
            return (0..n).map(f).collect();
        }

        // Dynamic chunked scheduling: small enough chunks that ragged
        // per-index costs balance, large enough to amortise the
        // cursor fetch.
        let chunk = (n / (workers * 4)).max(1);
        let cursor = AtomicUsize::new(0);
        let pieces: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL.with(|flag| flag.set(true));
                    let mut local: Vec<(usize, Vec<T>)> = Vec::new();
                    let mut claimed = 0u64;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        claimed += 1;
                        let end = (start + chunk).min(n);
                        local.push((start, (start..end).map(&f).collect()));
                    }
                    tasks_counter().add(claimed);
                    pieces
                        .lock()
                        .expect("exbox-par result mutex poisoned")
                        .append(&mut local);
                    IN_POOL.with(|flag| flag.set(false));
                });
            }
        });

        let mut pieces = pieces
            .into_inner()
            .expect("exbox-par result mutex poisoned");
        pieces.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, mut piece) in pieces {
            out.append(&mut piece);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Run `f` for every index in `0..n` for its side effects.
    /// Ordering across threads is unspecified, but with one thread
    /// (or nested inside a worker) indices run in order — exact
    /// serial semantics.
    pub fn parallel_for<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_map(n, &f);
    }
}

impl Default for ThreadPool {
    /// [`ThreadPool::global`].
    fn default() -> Self {
        ThreadPool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.parallel_map(100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_is_bitwise_deterministic_across_thread_counts() {
        let f = |i: usize| ((i as f64) * 0.1).sin().exp();
        let serial: Vec<u64> = ThreadPool::serial()
            .parallel_map(500, f)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        for threads in [2, 5, 8] {
            let par: Vec<u64> = ThreadPool::new(threads)
                .parallel_map(500, f)
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(serial, par, "thread count {threads} changed bits");
        }
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.parallel_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn for_visits_every_index_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        ThreadPool::new(8).parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_calls_run_inline() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map(8, |i| {
            // Inner call from a worker must not deadlock or explode;
            // it runs serially inline.
            pool.parallel_map(4, move |j| i * 10 + j)
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn single_thread_runs_on_caller_in_order() {
        // Side-effect order is the serial order for a 1-thread pool.
        let seen = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        ThreadPool::serial().parallel_for(10, |i| {
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
        });
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_counter_advances() {
        let before = exbox_obs::global()
            .snapshot()
            .counter("par.tasks")
            .unwrap_or(0);
        ThreadPool::new(2).parallel_map(64, |i| i);
        let after = exbox_obs::global()
            .snapshot()
            .counter("par.tasks")
            .unwrap_or(0);
        assert!(after > before, "par.tasks did not advance");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn env_knob_accepts_valid_values() {
        assert_eq!(parse_env_knob::<usize>("K", "8", |_| true), Some(8));
        // Surrounding whitespace is tolerated.
        assert_eq!(parse_env_knob::<usize>("K", "  8 \n", |_| true), Some(8));
        // Zero is valid where the predicate allows it
        // (EXBOX_DECISION_CACHE=0 legitimately disables the cache).
        assert_eq!(parse_env_knob::<usize>("K", "0", |_| true), Some(0));
    }

    #[test]
    fn env_knob_rejects_invalid_values() {
        // Zero where the knob requires a positive value (EXBOX_THREADS).
        assert_eq!(parse_env_knob::<usize>("K", "0", |n| *n >= 1), None);
        // Whitespace-only, empty, garbage.
        assert_eq!(parse_env_knob::<usize>("K", "   ", |_| true), None);
        assert_eq!(parse_env_knob::<usize>("K", "", |_| true), None);
        assert_eq!(parse_env_knob::<usize>("K", "eight", |_| true), None);
        // Overflow and negatives for unsigned knobs.
        assert_eq!(
            parse_env_knob::<usize>("K", "99999999999999999999999999", |_| true),
            None
        );
        assert_eq!(parse_env_knob::<usize>("K", "-3", |_| true), None);
        // Trailing junk after the number.
        assert_eq!(parse_env_knob::<usize>("K", "8 threads", |_| true), None);
    }
}
