//! # exbox-proptest — vendored property-testing shim
//!
//! A zero-dependency, deterministic stand-in for the subset of the
//! [`proptest`](https://docs.rs/proptest) API this workspace uses.
//! The reproduction must build and test **offline** (no crates.io
//! access — see `REPRODUCING.md`), so the real crate cannot be a
//! dependency; this shim keeps every existing `proptest!` suite
//! compiling unchanged. It is consumed under the name `proptest` via
//! Cargo dependency renaming (`proptest = { package = "exbox-proptest", … }`).
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs'
//!   case number and message; with fully deterministic seeding
//!   (derived from the test's `module_path!::name` and the case
//!   index) the failure is bit-reproducible, which is what matters
//!   for CI triage.
//! * **Uniform, non-adversarial generation.** Ranges draw uniformly;
//!   there is no bias toward boundary values.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `Strategy`
//! (+ `prop_map`), ranges over the primitive numeric types, tuples up
//! to arity 6, `Just`, `any::<bool|u32|u64>()`, `prop_oneof!`,
//! `prop::collection::vec`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, and `prop_assume!`.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic split-mix-64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Seed from a test's fully-qualified name and case index, so
    /// every run of every case is bit-reproducible.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64-bit draw (split-mix-64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Error signal a property body returns through the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject(String),
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. Object-safe; combinators require `Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives (the [`any`] implementation).
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

macro_rules! impl_any {
    ($($t:ty => $gen:expr;)*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}

impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
}

/// The canonical whole-domain strategy for `T` (`any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy combinators that need naming (see [`prop_oneof!`]).
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice among boxed strategies with a common value type.
    pub struct Union<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Union with no choices yet; generation panics until one is
        /// added with [`Union::or`].
        pub fn empty() -> Self {
            Union {
                choices: Vec::new(),
            }
        }

        /// Add one alternative.
        pub fn or<S: Strategy<Value = T> + 'static>(mut self, s: S) -> Self {
            self.choices.push(Box::new(s));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.choices.is_empty(), "prop_oneof! needs an arm");
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length bound for [`vec()`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generate vectors of values from `elem`, sized by `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Assert a condition inside a property; failure fails the case with
/// the formatted message (or the stringified condition).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __a,
                __b,
                ::std::format!($($fmt)+),
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: `{:?}` != `{:?}`", __a, __b);
    }};
}

/// Discard the current case (draw a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($s))+
    };
}

/// Define property tests. Each `fn name(x in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __runs: u32 = 0;
            let mut __attempts: u32 = 0;
            while __runs < __cfg.cases {
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempts,
                );
                __attempts += 1;
                let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __runs += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        assert!(
                            __attempts < __cfg.cases.saturating_mul(16).max(1024),
                            "proptest: too many rejected cases (last: {})",
                            __why
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case #{} of `{}` failed: {}",
                            __attempts - 1,
                            stringify!($name),
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Everything a `use proptest::prelude::*;` test file expects.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let n = Strategy::generate(&(-5i32..-1), &mut rng);
            assert!((-5..-1).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro path itself: tuples, vec, map, oneof, assume.
        #[test]
        fn shim_machinery(
            xs in prop::collection::vec((0u8..10, 0.0f64..1.0), 1..8),
            flag in any::<bool>(),
            word in prop_oneof![Just("a"), Just("b")],
            n in (1u64..100).prop_map(|v| v * 2),
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(n % 2 == 0, "n = {n}");
            prop_assert_eq!(word.len(), 1);
            prop_assert_ne!(word, "c");
            for (a, b) in xs {
                prop_assert!(a < 10 && (0.0..1.0).contains(&b));
            }
            let _ = flag;
        }
    }
}
