//! Application-level QoE ground truth.
//!
//! The paper measures QoE *on the device*: page load time from an
//! instrumented WebView, video startup delay from YouTube player
//! events, PSNR from screen-recorded Hangouts video (§5.2). The
//! simulator equivalents reconstruct the same app-level events from
//! packet fates:
//!
//! * **web** — a page's load time is the span from its request to the
//!   delivery of its last object packet,
//! * **streaming** — startup delay is when cumulative delivered media
//!   bytes first cover the player's startup buffer,
//! * **conferencing** — received-video PSNR from a codec distortion
//!   model driven by effective frame loss (lost + uselessly-late
//!   packets) — the two impairments that actually destroy frames.
//!
//! Thresholds for acceptability follow the paper (§5.3 uses 3 s page
//! load and 5 s startup delay; PSNR ≥ 25 dB is the conventional
//! "fair" floor from its ref. 66).

use exbox_net::{Direction, Duration, Instant};

use crate::outcome::FlowOutcome;

/// Default acceptability threshold: web page load time ≤ 3 s (§5.3).
pub const WEB_PLT_THRESHOLD: Duration = Duration::from_secs(3);
/// Default acceptability threshold: startup delay ≤ 5 s (§2, Fig. 3).
pub const STREAMING_STARTUP_THRESHOLD: Duration = Duration::from_secs(5);
/// Default acceptability threshold: PSNR ≥ 25 dB.
pub const CONFERENCING_PSNR_THRESHOLD_DB: f64 = 25.0;

/// Page load times of a web flow, one entry per observed page.
///
/// A page *starts* at an uplink request that follows ≥ 1 s of uplink
/// silence (the think-time gap); the per-object GETs inside a page
/// burst arrive within milliseconds of each other and do not open new
/// pages. A page whose downlink objects never fully arrive gets
/// `None` — an unloadable page.
pub fn page_load_times(flow: &FlowOutcome) -> Vec<Option<Duration>> {
    const THINK_GAP: Duration = Duration::from_secs(1);
    let uplinks: Vec<Instant> = flow
        .packets
        .iter()
        .filter(|p| p.direction == Direction::Uplink)
        .map(|p| p.offered)
        .collect();
    let mut requests: Vec<Instant> = Vec::new();
    for (i, &t) in uplinks.iter().enumerate() {
        if i == 0 || t.saturating_since(uplinks[i - 1]) >= THINK_GAP {
            requests.push(t);
        }
    }
    if requests.is_empty() {
        return Vec::new();
    }
    let mut plts = Vec::with_capacity(requests.len());
    for (i, &req) in requests.iter().enumerate() {
        let next = requests.get(i + 1).copied();
        // Downlink packets belonging to this page: offered after the
        // request and before the next one.
        let page_pkts: Vec<_> = flow
            .packets
            .iter()
            .filter(|p| p.direction == Direction::Downlink)
            .filter(|p| p.offered >= req && next.is_none_or(|n| p.offered < n))
            .collect();
        if page_pkts.is_empty() {
            continue; // request fired at flow end; no page to measure
        }
        let all_delivered = page_pkts.iter().all(|p| p.delivered.is_some());
        if !all_delivered {
            plts.push(None);
            continue;
        }
        let last = page_pkts
            .iter()
            .filter_map(|p| p.delivered)
            .max()
            .expect("non-empty page");
        plts.push(Some(last.saturating_since(req)));
    }
    plts
}

/// Median page load time; pages that never loaded dominate (any
/// `None` page among the worse half forces `None`).
pub fn median_page_load_time(flow: &FlowOutcome) -> Option<Duration> {
    let mut plts = page_load_times(flow);
    if plts.is_empty() {
        return None;
    }
    // Sort with None (never loaded) as worst.
    plts.sort_by_key(|p| p.map_or(u64::MAX, |d| d.as_nanos()));
    plts[plts.len() / 2]
}

/// Video startup delay: time from the flow's first packet until
/// cumulative delivered downlink bytes reach `startup_bytes`.
/// `None` when the buffer never fills — "the video does not even
/// play", as the paper observes for all-low-SNR placements (Fig. 3).
pub fn startup_delay(flow: &FlowOutcome, startup_bytes: u64) -> Option<Duration> {
    let start = flow.start()?;
    let mut deliveries: Vec<(Instant, u32)> = flow
        .packets
        .iter()
        .filter(|p| p.direction == Direction::Downlink)
        .filter_map(|p| p.delivered.map(|at| (at, p.size)))
        .collect();
    deliveries.sort_by_key(|&(at, _)| at);
    let mut cum = 0u64;
    for (at, size) in deliveries {
        cum += size as u64;
        if cum >= startup_bytes {
            return Some(at.saturating_since(start));
        }
    }
    None
}

/// Received-video PSNR in dB for a conferencing flow.
///
/// Codec distortion model: a frame is destroyed when any of its
/// packets is lost *or* arrives after the playout deadline
/// (`late_deadline`, default 400 ms — the conversational limit).
/// PSNR then decays exponentially in the effective frame-loss rate,
/// from a pristine ceiling of 42 dB to a floor of ≈10 dB (unusable),
/// the standard shape of packet-loss-vs-PSNR curves for motion video.
pub fn conferencing_psnr_db(flow: &FlowOutcome, late_deadline: Duration) -> f64 {
    let down: Vec<_> = flow
        .packets
        .iter()
        .filter(|p| p.direction == Direction::Downlink)
        .collect();
    if down.is_empty() {
        return 10.0;
    }
    let bad = down
        .iter()
        .filter(|p| match p.delivered {
            None => true,
            Some(at) => at.saturating_since(p.offered) > late_deadline,
        })
        .count();
    let eff_loss = bad as f64 / down.len() as f64;
    // Decay constant 5: PSNR crosses the 25 dB "fair" floor at ≈15–20%
    // effective frame loss, the conventional point where concealment
    // stops hiding damage in motion video.
    10.0 + 32.0 * (-5.0 * eff_loss).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::PacketOutcome;
    use crate::phy::SnrLevel;
    use exbox_net::{AppClass, FlowKey, Protocol};

    fn mk_flow(packets: Vec<PacketOutcome>, class: AppClass) -> FlowOutcome {
        FlowOutcome {
            key: FlowKey::synthetic(1, 1, 1, Protocol::Tcp),
            class,
            snr: SnrLevel::High,
            packets,
        }
    }

    fn up(ms: u64) -> PacketOutcome {
        PacketOutcome {
            offered: Instant::from_millis(ms),
            size: 300,
            direction: Direction::Uplink,
            delivered: Some(Instant::from_millis(ms + 1)),
        }
    }

    fn down(off_ms: u64, del_ms: Option<u64>, size: u32) -> PacketOutcome {
        PacketOutcome {
            offered: Instant::from_millis(off_ms),
            size,
            direction: Direction::Downlink,
            delivered: del_ms.map(Instant::from_millis),
        }
    }

    #[test]
    fn plt_spans_request_to_last_delivery() {
        let flow = mk_flow(
            vec![
                up(0),
                down(20, Some(100), 1000),
                down(25, Some(450), 1000),
                up(5000),
                down(5020, Some(5200), 1000),
            ],
            AppClass::Web,
        );
        let plts = page_load_times(&flow);
        assert_eq!(
            plts,
            vec![
                Some(Duration::from_millis(450)),
                Some(Duration::from_millis(200))
            ]
        );
    }

    #[test]
    fn plt_page_with_loss_is_none() {
        let flow = mk_flow(
            vec![up(0), down(20, Some(100), 1000), down(25, None, 1000)],
            AppClass::Web,
        );
        assert_eq!(page_load_times(&flow), vec![None]);
        assert_eq!(median_page_load_time(&flow), None);
    }

    #[test]
    fn median_plt_odd_pages() {
        let flow = mk_flow(
            vec![
                up(0),
                down(10, Some(1000), 100),
                up(2000),
                down(2010, Some(2100), 100),
                up(4000),
                down(4010, Some(4500), 100),
            ],
            AppClass::Web,
        );
        // PLTs: 1000, 100, 500 -> sorted 100, 500, 1000 -> median 500.
        assert_eq!(
            median_page_load_time(&flow),
            Some(Duration::from_millis(500))
        );
    }

    #[test]
    fn startup_delay_when_buffer_fills() {
        let flow = mk_flow(
            vec![
                down(0, Some(100), 600),
                down(1, Some(300), 600),
                down(2, Some(900), 600),
            ],
            AppClass::Streaming,
        );
        // Needs 1500 bytes: filled by the third delivery at 900 ms.
        assert_eq!(startup_delay(&flow, 1500), Some(Duration::from_millis(900)));
        // 1200 bytes: filled at the second delivery.
        assert_eq!(startup_delay(&flow, 1200), Some(Duration::from_millis(300)));
    }

    #[test]
    fn startup_delay_none_when_starved() {
        let flow = mk_flow(
            vec![
                down(0, Some(10), 600),
                down(1, None, 600),
                down(2, None, 600),
            ],
            AppClass::Streaming,
        );
        assert_eq!(startup_delay(&flow, 1500), None);
    }

    #[test]
    fn psnr_pristine_vs_lossy() {
        let clean = mk_flow(
            (0..100)
                .map(|i| down(i * 30, Some(i * 30 + 20), 1000))
                .collect(),
            AppClass::Conferencing,
        );
        let lossy = mk_flow(
            (0..100)
                .map(|i| {
                    down(
                        i * 30,
                        if i % 3 == 0 { None } else { Some(i * 30 + 20) },
                        1000,
                    )
                })
                .collect(),
            AppClass::Conferencing,
        );
        let p_clean = conferencing_psnr_db(&clean, Duration::from_millis(400));
        let p_lossy = conferencing_psnr_db(&lossy, Duration::from_millis(400));
        assert!(p_clean > 40.0, "clean PSNR {p_clean}");
        assert!(p_lossy < 28.0, "lossy PSNR {p_lossy}");
        assert!(p_lossy >= 10.0);
    }

    #[test]
    fn psnr_counts_late_packets_as_loss() {
        let late = mk_flow(
            (0..100)
                .map(|i| down(i * 30, Some(i * 30 + 900), 1000))
                .collect(),
            AppClass::Conferencing,
        );
        let p = conferencing_psnr_db(&late, Duration::from_millis(400));
        assert!(p < 12.0, "all-late PSNR {p}");
    }

    #[test]
    fn psnr_empty_flow_is_floor() {
        let empty = mk_flow(vec![], AppClass::Conferencing);
        assert_eq!(
            conferencing_psnr_db(&empty, Duration::from_millis(400)),
            10.0
        );
    }

    #[test]
    fn thresholds_match_paper() {
        assert_eq!(WEB_PLT_THRESHOLD, Duration::from_secs(3));
        assert_eq!(STREAMING_STARTUP_THRESHOLD, Duration::from_secs(5));
        assert_eq!(CONFERENCING_PSNR_THRESHOLD_DB, 25.0);
    }
}
