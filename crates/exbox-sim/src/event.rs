//! Discrete-event queue.
//!
//! A minimal, deterministic event calendar: events fire in timestamp
//! order, with insertion order breaking ties so reruns are
//! bit-identical — the property every figure-regeneration binary
//! depends on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use exbox_net::Instant;

/// Lazily-bound global counters for the calendar hot path.
mod metrics {
    use std::sync::{Arc, OnceLock};

    use exbox_obs::Counter;

    /// `sim.events_scheduled` — events pushed onto any queue.
    pub fn scheduled() -> &'static Arc<Counter> {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| exbox_obs::global().counter("sim.events_scheduled"))
    }

    /// `sim.events_popped` — events fired from any queue.
    pub fn popped() -> &'static Arc<Counter> {
        static C: OnceLock<Arc<Counter>> = OnceLock::new();
        C.get_or_init(|| exbox_obs::global().counter("sim.events_popped"))
    }
}

/// A deterministic discrete-event queue over event payloads `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Instant, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        metrics::scheduled().inc();
    }

    /// Pop the earliest event.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Instant, E)> {
        let popped = self.heap.pop().map(|Reverse(e)| (e.at, e.event));
        if popped.is_some() {
            metrics::popped().inc();
        }
        popped
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(30), "c");
        q.schedule(Instant::from_millis(10), "a");
        q.schedule(Instant::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Instant::from_secs(1), ());
        q.schedule(Instant::from_millis(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Instant::from_millis(1)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(10), 1);
        assert_eq!(q.next(), Some((Instant::from_millis(10), 1)));
        q.schedule(Instant::from_millis(5), 2);
        q.schedule(Instant::from_millis(7), 3);
        assert_eq!(q.next(), Some((Instant::from_millis(5), 2)));
        q.schedule(Instant::from_millis(6), 4);
        assert_eq!(q.next(), Some((Instant::from_millis(6), 4)));
        assert_eq!(q.next(), Some((Instant::from_millis(7), 3)));
        assert_eq!(q.next(), None);
    }
}
