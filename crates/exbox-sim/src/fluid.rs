//! Fluid (analytic) cell models for large parameter sweeps.
//!
//! The packet-level simulators in [`crate::wifi`] and [`crate::lte`]
//! cost seconds per traffic matrix; the paper's scale-up studies
//! (Fig. 2's 50×50 heatmap grid, Fig. 13's ≈21 000 samples, Fig. 14's
//! populous networks) would take hours through them. This module is
//! the standard fix: a flow-level *fluid* model computing each flow's
//! steady-state throughput, delay and loss from max-min fair resource
//! sharing — the same airtime/PRB arithmetic as the packet models,
//! without per-packet events. Unit tests in `tests/` cross-validate
//! the fluid model against the DES on small configurations.
//!
//! Resource accounting:
//!
//! * **WiFi** — the shared resource is airtime. A flow needs
//!   `overhead + L/R(snr)` seconds per `L`-byte packet, so low-SNR
//!   clients demand more airtime per bit (the rate anomaly).
//! * **LTE** — the resource is PRBs·TTI. A UE at CQI `q` extracts
//!   `bytes_per_prb(q)` from each PRB; round-robin splits PRBs
//!   equally among backlogged UEs, proportional fair weights by
//!   channel quality.

use exbox_net::{AppClass, Duration, QosSample};

use crate::phy::{lte_bytes_per_prb, lte_cqi_from_snr, wifi_phy_rate_bps, SnrLevel};

/// A flow described at fluid granularity.
#[derive(Debug, Clone, Copy)]
pub struct FluidFlow {
    /// Application class (carried through to the result).
    pub class: AppClass,
    /// SNR level of the owning client.
    pub snr: SnrLevel,
    /// Long-run offered downlink rate in bits/s.
    pub offered_bps: f64,
    /// Typical packet size in bytes (airtime quantisation).
    pub pkt_size: u32,
}

impl FluidFlow {
    /// Convenience constructor.
    pub fn new(class: AppClass, snr: SnrLevel, offered_bps: f64, pkt_size: u32) -> Self {
        FluidFlow {
            class,
            snr,
            offered_bps,
            pkt_size,
        }
    }
}

/// Steady-state QoS prediction for one flow.
#[derive(Debug, Clone, Copy)]
pub struct FluidQos {
    /// Achieved downlink throughput at the flow's steady offered
    /// rate, bits/s.
    pub throughput_bps: f64,
    /// Burst capacity: the rate this flow would attain if it alone
    /// demanded unbounded bandwidth while the other flows kept their
    /// steady rates. Page downloads and playout-buffer fills run at
    /// this rate, not at the long-run average.
    pub burst_bps: f64,
    /// Mean one-way delay.
    pub delay: Duration,
    /// Fraction of offered traffic not delivered.
    pub loss_ratio: f64,
}

impl FluidQos {
    /// Convert to the gateway's [`QosSample`] shape.
    pub fn as_qos_sample(&self) -> QosSample {
        QosSample {
            throughput_bps: self.throughput_bps,
            mean_delay: self.delay,
            loss_ratio: self.loss_ratio,
        }
    }
}

/// Max-min fair allocation: split `capacity` among `demands` such
/// that no flow gets more than it asked for, unmet demand is shared
/// equally, and the result is Pareto-efficient. Returns allocations
/// in input order.
///
/// # Panics
/// Panics on a negative capacity or demand.
pub fn maxmin_allocate(demands: &[f64], capacity: f64) -> Vec<f64> {
    assert!(capacity >= 0.0, "capacity must be non-negative");
    assert!(
        demands.iter().all(|&d| d >= 0.0),
        "demands must be non-negative"
    );
    let n = demands.len();
    let mut alloc = vec![0.0; n];
    let mut remaining = capacity;
    let mut active: Vec<usize> = (0..n).collect();
    // Iteratively satisfy the smallest demands at the fair share.
    while !active.is_empty() && remaining > 1e-12 {
        let share = remaining / active.len() as f64;
        let mut satisfied = Vec::new();
        for &i in &active {
            if demands[i] - alloc[i] <= share {
                satisfied.push(i);
            }
        }
        if satisfied.is_empty() {
            for &i in &active {
                alloc[i] += share;
            }
            break;
        }
        for &i in &satisfied {
            remaining -= demands[i] - alloc[i];
            alloc[i] = demands[i];
        }
        active.retain(|i| !satisfied.contains(i));
    }
    alloc
}

/// Fluid WiFi cell parameters.
#[derive(Debug, Clone)]
pub struct FluidWifi {
    /// Per-transmission fixed overhead (matches [`crate::wifi::WifiConfig`]).
    pub per_tx_overhead: Duration,
    /// Fraction of airtime usable after contention losses (the AP is
    /// the dominant contender in downlink-heavy cells, so this stays
    /// high).
    pub efficiency: f64,
    /// Queue depth in bytes used for the bufferbloat delay of
    /// saturated flows.
    pub queue_bytes: f64,
    /// Baseline one-way delay at negligible load.
    pub base_delay: Duration,
}

impl Default for FluidWifi {
    fn default() -> Self {
        FluidWifi {
            per_tx_overhead: Duration::from_micros(190),
            efficiency: 0.93,
            queue_bytes: 3_000.0 * 1_400.0,
            base_delay: Duration::from_millis(2),
        }
    }
}

impl FluidWifi {
    /// Airtime (seconds) this flow needs per second of wall-clock to
    /// carry its offered rate. Exposed for calibration and tests.
    pub fn airtime_demand(&self, f: &FluidFlow) -> f64 {
        let rate = wifi_phy_rate_bps(f.snr.nominal_snr_db());
        let bits_per_pkt = f.pkt_size as f64 * 8.0;
        let airtime_per_pkt = self.per_tx_overhead.as_secs_f64() + bits_per_pkt / rate;
        (f.offered_bps / bits_per_pkt) * airtime_per_pkt
    }

    /// Predict steady-state QoS for each flow.
    ///
    /// DCF grants stations equal *packet* opportunities, which makes
    /// 802.11 throughput-fair, not airtime-fair — the root of the
    /// rate anomaly. The allocator therefore waterfills a common
    /// goodput level λ: each flow achieves `min(offered, λ)` bits/s,
    /// where λ is set so total airtime hits the cell's capacity.
    pub fn predict(&self, flows: &[FluidFlow]) -> Vec<FluidQos> {
        // Airtime-seconds per delivered bit, per flow.
        let t_per_bit: Vec<f64> = flows
            .iter()
            .map(|f| {
                let rate = wifi_phy_rate_bps(f.snr.nominal_snr_db());
                let bits = f.pkt_size as f64 * 8.0;
                (self.per_tx_overhead.as_secs_f64() + bits / rate) / bits
            })
            .collect();
        let airtime_at = |level: f64| -> f64 {
            flows
                .iter()
                .zip(&t_per_bit)
                .map(|(f, &t)| f.offered_bps.min(level) * t)
                .sum()
        };
        let max_offered = flows.iter().map(|f| f.offered_bps).fold(0.0, f64::max);
        let level = if airtime_at(max_offered) <= self.efficiency {
            max_offered // undersubscribed: everyone gets their demand
        } else {
            // Binary search the waterfill level.
            let (mut lo, mut hi) = (0.0, max_offered);
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if airtime_at(mid) > self.efficiency {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            lo
        };
        let rho: f64 = airtime_at(level) / self.efficiency;
        // Burst capacity per flow: waterfill level when flow i's
        // demand is unbounded and the others keep theirs.
        let burst_for = |i: usize| -> f64 {
            let airtime_with = |lvl: f64| -> f64 {
                flows
                    .iter()
                    .zip(&t_per_bit)
                    .enumerate()
                    .map(|(j, (f, &t))| {
                        let demand = if j == i { f64::INFINITY } else { f.offered_bps };
                        demand.min(lvl) * t
                    })
                    .sum()
            };
            let (mut lo, mut hi) = (0.0, 1.0 / t_per_bit[i].max(1e-12));
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if airtime_with(mid) > self.efficiency {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            lo
        };
        flows
            .iter()
            .zip(&t_per_bit)
            .enumerate()
            .map(|(i, (f, _))| {
                let throughput = f.offered_bps.min(level);
                let burst_bps = burst_for(i).max(throughput);
                let frac = if f.offered_bps > 0.0 {
                    throughput / f.offered_bps
                } else {
                    1.0
                };
                let loss = 1.0 - frac;
                let delay = if frac < 0.999 {
                    // Saturated: the queue stays full (bufferbloat).
                    let d_s = if throughput > 0.0 {
                        self.queue_bytes * 8.0 / throughput
                    } else {
                        10.0
                    };
                    Duration::from_secs_f64(d_s.min(10.0))
                } else {
                    // M/G/1-flavoured load scaling of the base delay.
                    let scale = 1.0 / (1.0 - rho.min(0.95));
                    Duration::from_secs_f64(self.base_delay.as_secs_f64() * scale)
                };
                FluidQos {
                    throughput_bps: throughput,
                    burst_bps,
                    delay,
                    loss_ratio: loss,
                }
            })
            .collect()
    }
}

/// Fluid LTE cell parameters.
#[derive(Debug, Clone)]
pub struct FluidLte {
    /// PRBs per TTI.
    pub prbs: usize,
    /// Queue depth in bytes for saturated-flow delay.
    pub queue_bytes: f64,
    /// Baseline one-way delay at negligible load (TTI + HARQ mix).
    pub base_delay: Duration,
}

impl Default for FluidLte {
    fn default() -> Self {
        FluidLte {
            prbs: 50,
            queue_bytes: 3_000.0 * 1_400.0,
            base_delay: Duration::from_millis(4),
        }
    }
}

impl FluidLte {
    /// PRB-seconds per second this flow demands.
    fn prb_demand(&self, f: &FluidFlow) -> f64 {
        let cqi = lte_cqi_from_snr(f.snr.nominal_snr_db());
        let bytes_per_prb_sec = lte_bytes_per_prb(cqi) * 1_000.0; // per second of one PRB
        (f.offered_bps / 8.0) / bytes_per_prb_sec
    }

    /// Predict steady-state QoS for each flow.
    pub fn predict(&self, flows: &[FluidFlow]) -> Vec<FluidQos> {
        let demands: Vec<f64> = flows.iter().map(|f| self.prb_demand(f)).collect();
        let alloc = maxmin_allocate(&demands, self.prbs as f64);
        let rho: f64 = alloc.iter().sum::<f64>() / self.prbs as f64;
        // PRB-seconds per second per bit for each flow (inverse of
        // its per-PRB extraction rate).
        let prb_per_bit: Vec<f64> = flows
            .iter()
            .zip(&demands)
            .map(|(f, &d)| {
                if f.offered_bps > 0.0 {
                    d / f.offered_bps
                } else {
                    0.0
                }
            })
            .collect();
        let burst_for = |i: usize| -> f64 {
            let others: f64 = (0..flows.len()).filter(|&j| j != i).map(|j| alloc[j]).sum();
            let spare = (self.prbs as f64 - others).max(alloc[i]);
            if prb_per_bit[i] > 0.0 {
                spare / prb_per_bit[i]
            } else {
                // Flow with zero offered rate: derive from its CQI.
                let cqi = lte_cqi_from_snr(flows[i].snr.nominal_snr_db());
                spare * lte_bytes_per_prb(cqi) * 1_000.0 * 8.0
            }
        };
        flows
            .iter()
            .zip(demands.iter().zip(&alloc))
            .enumerate()
            .map(|(i, (f, (&d, &a)))| {
                let frac = if d > 0.0 { (a / d).min(1.0) } else { 1.0 };
                let throughput = f.offered_bps * frac;
                let burst_bps = burst_for(i).max(throughput);
                let loss = 1.0 - frac;
                let delay = if frac < 0.999 {
                    let d_s = if throughput > 0.0 {
                        self.queue_bytes * 8.0 / throughput
                    } else {
                        10.0
                    };
                    Duration::from_secs_f64(d_s.min(10.0))
                } else {
                    let scale = 1.0 / (1.0 - rho.min(0.95));
                    Duration::from_secs_f64(self.base_delay.as_secs_f64() * scale)
                };
                FluidQos {
                    throughput_bps: throughput,
                    burst_bps,
                    delay,
                    loss_ratio: loss,
                }
            })
            .collect()
    }
}

/// Fluid estimate of app-level QoE from a [`FluidQos`], mirroring the
/// packet-level extractors in [`crate::appqoe`].
pub mod qoe {
    use super::FluidQos;
    use exbox_net::Duration;

    /// Startup delay: time to pull `startup_bytes` at the achieved
    /// rate, `None` when the flow is fully starved (paper Fig. 3's
    /// "does not even play").
    pub fn startup_delay(q: &FluidQos, startup_bytes: u64) -> Option<Duration> {
        if q.burst_bps <= 1.0 || q.loss_ratio > 0.95 {
            return None;
        }
        let secs = startup_bytes as f64 * 8.0 / q.burst_bps + q.delay.as_secs_f64();
        Some(Duration::from_secs_f64(secs))
    }

    /// Page load time for a page of `page_bytes`.
    pub fn page_load_time(q: &FluidQos, page_bytes: u64) -> Option<Duration> {
        if q.burst_bps <= 1.0 || q.loss_ratio > 0.3 {
            // Lossy pages stall on retransmissions and effectively
            // never finish within patience.
            return None;
        }
        let secs = page_bytes as f64 * 8.0 / q.burst_bps + 2.0 * q.delay.as_secs_f64();
        Some(Duration::from_secs_f64(secs))
    }

    /// Conferencing PSNR from loss + lateness (same distortion curve
    /// as [`crate::appqoe::conferencing_psnr_db`]).
    pub fn conferencing_psnr_db(q: &FluidQos, late_deadline: Duration) -> f64 {
        let late = if q.delay > late_deadline { 1.0 } else { 0.0 };
        let eff_loss = (q.loss_ratio + late).min(1.0);
        10.0 + 32.0 * (-5.0 * eff_loss).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxmin_undersubscribed_gives_demands() {
        let a = maxmin_allocate(&[0.2, 0.3], 1.0);
        assert!((a[0] - 0.2).abs() < 1e-12);
        assert!((a[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn maxmin_oversubscribed_equal_split() {
        let a = maxmin_allocate(&[1.0, 1.0, 1.0], 0.9);
        for v in &a {
            assert!((v - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn maxmin_protects_small_demands() {
        let a = maxmin_allocate(&[0.05, 2.0, 2.0], 1.0);
        assert!((a[0] - 0.05).abs() < 1e-9, "small demand fully met");
        assert!((a[1] - 0.475).abs() < 1e-9);
        assert!((a[2] - 0.475).abs() < 1e-9);
    }

    #[test]
    fn maxmin_conserves_capacity() {
        let demands = [0.3, 0.8, 0.1, 0.5];
        let a = maxmin_allocate(&demands, 1.0);
        let total: f64 = a.iter().sum();
        assert!(total <= 1.0 + 1e-9);
        // Oversubscribed: capacity fully used.
        assert!((total - 1.0).abs() < 1e-9);
    }

    fn stream(snr: SnrLevel) -> FluidFlow {
        FluidFlow::new(AppClass::Streaming, snr, 2_500_000.0, 1400)
    }

    #[test]
    fn wifi_light_load_no_loss() {
        let cell = FluidWifi::default();
        let qos = cell.predict(&[stream(SnrLevel::High)]);
        assert!((qos[0].throughput_bps - 2_500_000.0).abs() < 1.0);
        assert_eq!(qos[0].loss_ratio, 0.0);
        assert!(qos[0].delay < Duration::from_millis(10));
    }

    #[test]
    fn wifi_saturation_caps_throughput() {
        let cell = FluidWifi::default();
        let flows: Vec<FluidFlow> = (0..30).map(|_| stream(SnrLevel::High)).collect();
        let qos = cell.predict(&flows);
        // 30 x 2.5 Mbps = 75 Mbps >> ~25 Mbps airtime capacity.
        let total: f64 = qos.iter().map(|q| q.throughput_bps).sum();
        assert!(
            (15_000_000.0..40_000_000.0).contains(&total),
            "aggregate {total}"
        );
        assert!(qos[0].loss_ratio > 0.3);
        assert!(
            qos[0].delay > Duration::from_millis(100),
            "bufferbloat expected"
        );
    }

    #[test]
    fn wifi_low_snr_flow_demands_more_airtime() {
        let cell = FluidWifi::default();
        let hi = cell.airtime_demand(&stream(SnrLevel::High));
        let lo = cell.airtime_demand(&stream(SnrLevel::Low));
        assert!(lo > hi * 1.2, "lo {lo} vs hi {hi}");
    }

    #[test]
    fn wifi_rate_anomaly_in_fluid_model() {
        // Saturating flows: DCF packet fairness means low-SNR peers
        // drag the common waterfill level down for everyone.
        let cell = FluidWifi::default();
        let sat = |snr| FluidFlow::new(AppClass::Streaming, snr, 10_000_000.0, 1400);
        let all_high: Vec<FluidFlow> = (0..4).map(|_| sat(SnrLevel::High)).collect();
        let mut mixed = all_high.clone();
        for f in mixed.iter_mut().take(2) {
            f.snr = SnrLevel::Low;
        }
        let q_high = cell.predict(&all_high);
        let q_mixed = cell.predict(&mixed);
        // Flow 3 is high-SNR in both; the low-SNR peers must hurt it.
        assert!(
            q_mixed[3].throughput_bps < q_high[3].throughput_bps * 0.9,
            "{} !< {}",
            q_mixed[3].throughput_bps,
            q_high[3].throughput_bps
        );
        // And all saturated flows share one goodput level (throughput
        // fairness), the DCF signature.
        let lvl = q_mixed[0].throughput_bps;
        for q in &q_mixed {
            assert!((q.throughput_bps - lvl).abs() < 1.0);
        }
    }

    #[test]
    fn lte_capacity_scales_with_cqi() {
        let cell = FluidLte::default();
        let hi = cell.predict(&[FluidFlow::new(
            AppClass::Streaming,
            SnrLevel::High,
            60_000_000.0,
            1400,
        )]);
        let lo = cell.predict(&[FluidFlow::new(
            AppClass::Streaming,
            SnrLevel::Low,
            60_000_000.0,
            1400,
        )]);
        assert!(hi[0].throughput_bps > lo[0].throughput_bps * 1.5);
    }

    #[test]
    fn lte_light_load_clean() {
        let cell = FluidLte::default();
        let q = cell.predict(&[FluidFlow::new(
            AppClass::Web,
            SnrLevel::High,
            1_000_000.0,
            1400,
        )]);
        assert_eq!(q[0].loss_ratio, 0.0);
        assert!(q[0].delay < Duration::from_millis(20));
    }

    #[test]
    fn qoe_helpers_track_qos() {
        let good = FluidQos {
            throughput_bps: 10_000_000.0,
            burst_bps: 10_000_000.0,
            delay: Duration::from_millis(5),
            loss_ratio: 0.0,
        };
        let bad = FluidQos {
            throughput_bps: 300_000.0,
            burst_bps: 300_000.0,
            delay: Duration::from_secs(2),
            loss_ratio: 0.4,
        };
        let s_good = qoe::startup_delay(&good, 2_500_000).unwrap();
        let s_bad = qoe::startup_delay(&bad, 2_500_000).unwrap();
        assert!(s_good < Duration::from_secs(5));
        assert!(s_bad > Duration::from_secs(5));
        assert!(qoe::page_load_time(&good, 1_500_000).unwrap() < Duration::from_secs(3));
        assert_eq!(qoe::page_load_time(&bad, 1_500_000), None);
        assert!(qoe::conferencing_psnr_db(&good, Duration::from_millis(400)) > 40.0);
        assert!(qoe::conferencing_psnr_db(&bad, Duration::from_millis(400)) < 12.0);
    }

    #[test]
    fn starved_flow_never_starts() {
        let dead = FluidQos {
            throughput_bps: 0.0,
            burst_bps: 0.0,
            delay: Duration::from_secs(10),
            loss_ratio: 1.0,
        };
        assert_eq!(qoe::startup_delay(&dead, 1_000_000), None);
        assert_eq!(qoe::page_load_time(&dead, 1_000_000), None);
    }
}
