//! # exbox-sim — discrete-event wireless cell simulator
//!
//! The paper evaluates ExBox on physical WiFi/LTE testbeds (§5) and
//! scales up with ns-3 (§6). This crate is the Rust stand-in for both:
//! deterministic simulations of a single cell — exactly the paper's
//! scope ("by network we refer to coverage of a single WiFi access
//! point or LTE eNodeB") — detailed enough to reproduce the phenomena
//! the Experiential Capacity Region is made of:
//!
//! * [`event`] — deterministic discrete-event queue.
//! * [`phy`] — path loss, SNR levels, 802.11n MCS and LTE CQI tables.
//! * [`wifi`] — packet-level 802.11 DCF model: contention, collisions,
//!   SNR-dependent rates and error rates, per-flow AP queues. Exhibits
//!   the rate anomaly of the paper's Fig. 3.
//! * [`lte`] — TTI/PRB eNodeB model with round-robin and
//!   proportional-fair schedulers and HARQ.
//! * [`fluid`] — flow-level analytic versions of both cells for the
//!   large parameter sweeps (Fig. 2 grid, Fig. 13/14 scale-ups),
//!   cross-validated against the packet models.
//! * [`outcome`] — per-packet fates; derives the gateway-visible
//!   [`exbox_net::QosSample`].
//! * [`appqoe`] — application-level QoE ground truth (page load time,
//!   startup delay, PSNR), reconstructed from packet fates the same
//!   way the paper's instrumented apps measured them on-device.

pub mod appqoe;
pub mod event;
pub mod fluid;
pub mod lte;
pub mod outcome;
pub mod phy;
pub mod wifi;

pub use event::EventQueue;
pub use fluid::{FluidFlow, FluidLte, FluidQos, FluidWifi};
pub use lte::{run_lte, LteConfig, LteScheduler, LteUe, OfferedLteFlow};
pub use outcome::{FlowOutcome, PacketOutcome};
pub use phy::{Channel, SnrLevel};
pub use wifi::{run_wifi, OfferedFlow, WifiClient, WifiConfig};
