//! Frame-level LTE downlink simulation.
//!
//! Models one eNodeB (the paper's §6.1 "indoor LTE network … with an
//! eNodeB having 23 dBm transmit power"): a 1 ms TTI scheduler over a
//! pool of physical resource blocks (PRBs). Each TTI, backlogged UEs
//! share the PRB pool (round-robin or proportional-fair); a UE's
//! per-PRB capacity follows its CQI (from SNR), so cell-edge UEs both
//! get less out of each PRB *and* — under round-robin — drag down the
//! cell's aggregate, the LTE analogue of the WiFi rate anomaly.
//! First transmissions fail with a configurable BLER and are HARQ
//! retransmitted 8 ms later (retransmissions are assumed to succeed,
//! the standard abstraction).
//!
//! Uplink is modelled as an uncongested fixed-latency path: the
//! paper's workloads are downlink-dominated (§6.2 "we only use the
//! downlink flows in our simulation") and LTE uplink is scheduled
//! (collision-free), so its queueing is negligible at these loads.

use std::collections::VecDeque;

use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet};
use exbox_traffic::dist::Rng;

use crate::outcome::{FlowOutcome, PacketOutcome};
use crate::phy::{lte_bytes_per_prb, lte_cqi_from_snr, SnrLevel};
use crate::wifi::{apply_backhaul, Backhaul};

/// Downlink scheduler discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LteScheduler {
    /// Equal PRB split among backlogged UEs each TTI.
    RoundRobin,
    /// Proportional fair: PRBs weighted by instantaneous-rate /
    /// smoothed-throughput, favouring UEs that are behind relative to
    /// their channel quality.
    ProportionalFair,
}

/// Configuration of the LTE cell model.
#[derive(Debug, Clone)]
pub struct LteConfig {
    /// PRBs per TTI (50 ≙ 10 MHz bandwidth).
    pub prbs: usize,
    /// Scheduler discipline.
    pub scheduler: LteScheduler,
    /// First-transmission block error rate (HARQ-recovered).
    pub bler: f64,
    /// HARQ retransmission delay.
    pub harq_delay: Duration,
    /// Per-flow downlink queue depth in packets (RLC buffering).
    pub queue_limit: usize,
    /// Fixed uplink latency.
    pub uplink_latency: Duration,
    /// Drain time after the last offered packet.
    pub drain_grace: Duration,
    /// RNG seed (BLER draws).
    pub seed: u64,
    /// Backhaul between servers and the PGW.
    pub backhaul: Backhaul,
}

impl Default for LteConfig {
    fn default() -> Self {
        LteConfig {
            prbs: 50,
            scheduler: LteScheduler::RoundRobin,
            bler: 0.1,
            harq_delay: Duration::from_millis(8),
            queue_limit: 3_000,
            uplink_latency: Duration::from_millis(15),
            drain_grace: Duration::from_secs(10),
            seed: 0x17E,
            backhaul: Backhaul::transparent(),
        }
    }
}

/// One user equipment in the cell.
#[derive(Debug, Clone, Copy)]
pub struct LteUe {
    /// Link SNR in dB (drives CQI).
    pub snr_db: f64,
}

impl LteUe {
    /// UE at the nominal SNR of a discrete level.
    pub fn at_level(level: SnrLevel) -> Self {
        LteUe {
            snr_db: level.nominal_snr_db(),
        }
    }
}

/// One flow offered to the cell (same shape as the WiFi module's).
#[derive(Debug, Clone)]
pub struct OfferedLteFlow {
    /// Flow 5-tuple.
    pub key: FlowKey,
    /// Application class.
    pub class: AppClass,
    /// Index into the UE array.
    pub ue: usize,
    /// Offered packets, sorted by timestamp.
    pub packets: Vec<Packet>,
}

#[derive(Debug, Clone, Copy)]
struct QueuedPkt {
    flow: usize,
    idx: usize,
    /// Bytes of this packet still to be scheduled.
    remaining: u32,
}

/// Run the cell simulation; returns one [`FlowOutcome`] per flow, in
/// input order.
///
/// # Panics
/// Panics if a flow references a UE outside `ues` or its trace is not
/// time-sorted.
pub fn run_lte(cfg: &LteConfig, ues: &[LteUe], flows: &[OfferedLteFlow]) -> Vec<FlowOutcome> {
    let (out, wall_ns) = exbox_obs::time_ns(|| run_lte_inner(cfg, ues, flows));
    let reg = exbox_obs::global();
    reg.counter("sim.lte_runs").inc();
    reg.histogram("sim.run_wall_ns", &exbox_obs::buckets::latency_ns())
        .record(wall_ns);
    reg.counter("sim.packets_simulated")
        .add(flows.iter().map(|f| f.packets.len() as u64).sum());
    out
}

fn run_lte_inner(cfg: &LteConfig, ues: &[LteUe], flows: &[OfferedLteFlow]) -> Vec<FlowOutcome> {
    for f in flows {
        assert!(f.ue < ues.len(), "flow references unknown UE");
        assert!(
            f.packets
                .windows(2)
                .all(|w| w[0].timestamp <= w[1].timestamp),
            "offered trace must be time-sorted"
        );
    }

    let mut outcomes: Vec<Vec<PacketOutcome>> = flows
        .iter()
        .map(|f| {
            f.packets
                .iter()
                .map(|p| PacketOutcome {
                    offered: p.timestamp,
                    size: p.size,
                    direction: p.direction,
                    delivered: None,
                })
                .collect()
        })
        .collect();

    // Per-UE capacity per PRB per TTI.
    let bytes_per_prb: Vec<f64> = ues
        .iter()
        .map(|u| lte_bytes_per_prb(lte_cqi_from_snr(u.snr_db)))
        .collect();

    // Uplink: fixed latency, no loss.
    for (fi, f) in flows.iter().enumerate() {
        for (pi, p) in f.packets.iter().enumerate() {
            if p.direction == Direction::Uplink {
                outcomes[fi][pi].delivered = Some(p.timestamp + cfg.uplink_latency);
            }
        }
    }

    // Downlink arrivals per TTI, bucketed up front for a simple frame
    // loop (a TTI clock is more natural than a packet event queue
    // here, and matches eNodeB operation).
    let mut downlink_items = Vec::new();
    for (fi, f) in flows.iter().enumerate() {
        for (pi, p) in f.packets.iter().enumerate() {
            if p.direction == Direction::Downlink {
                downlink_items.push((p.timestamp, fi, pi, p.size));
            }
        }
    }
    let entries = apply_backhaul(&cfg.backhaul, downlink_items, cfg.seed ^ 0xBACC);
    let mut last_offer = Instant::ZERO;
    let mut arrivals: Vec<(Instant, usize, usize)> = Vec::new(); // (t, flow, idx)
    for (fi, f) in flows.iter().enumerate() {
        for (pi, p) in f.packets.iter().enumerate() {
            match p.direction {
                Direction::Downlink => {
                    if let Some(at) = entries[&(fi, pi)] {
                        arrivals.push((at, fi, pi));
                        last_offer = last_offer.max(at);
                    }
                }
                Direction::Uplink => last_offer = last_offer.max(p.timestamp),
            }
        }
    }
    arrivals.sort_by_key(|&(t, f, i)| (t, f, i));
    let hard_stop = last_offer + cfg.drain_grace;

    let mut rng = Rng::new(cfg.seed).derive(0x17E7);
    // Per-flow RLC queues; UE-level backlog is derived.
    let mut queues: Vec<VecDeque<QueuedPkt>> = vec![VecDeque::new(); flows.len()];
    // HARQ retransmissions pending delivery: (deliver_at, flow, idx).
    let mut harq: VecDeque<(Instant, usize, usize)> = VecDeque::new();
    // PF smoothed throughput per UE (bytes/TTI).
    let mut pf_avg: Vec<f64> = vec![1.0; ues.len()];
    // Round-robin cursor across flows within a UE.
    let mut flow_rr: Vec<usize> = vec![0; ues.len()];
    // Flows per UE.
    let mut ue_flows: Vec<Vec<usize>> = vec![Vec::new(); ues.len()];
    for (fi, f) in flows.iter().enumerate() {
        ue_flows[f.ue].push(fi);
    }

    let tti = Duration::from_millis(1);
    let mut now = Instant::ZERO;
    let mut next_arrival = 0usize;

    while now <= hard_stop {
        let tti_end = now + tti;

        // Enqueue arrivals that land in this TTI.
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 < tti_end {
            let (_, fi, pi) = arrivals[next_arrival];
            next_arrival += 1;
            if queues[fi].len() < cfg.queue_limit {
                queues[fi].push_back(QueuedPkt {
                    flow: fi,
                    idx: pi,
                    remaining: flows[fi].packets[pi].size,
                });
            }
        }

        // Deliver HARQ retransmissions that matured.
        while let Some(&(at, fi, pi)) = harq.front() {
            if at >= tti_end {
                break;
            }
            harq.pop_front();
            outcomes[fi][pi].delivered = Some(at);
        }

        // Schedule this TTI.
        let backlogged: Vec<usize> = (0..ues.len())
            .filter(|&u| ue_flows[u].iter().any(|&fi| !queues[fi].is_empty()))
            .collect();
        if !backlogged.is_empty() {
            // PRB allocation per UE.
            let shares: Vec<usize> = match cfg.scheduler {
                LteScheduler::RoundRobin => {
                    let base = cfg.prbs / backlogged.len();
                    let extra = cfg.prbs % backlogged.len();
                    (0..backlogged.len())
                        .map(|i| base + usize::from(i < extra))
                        .collect()
                }
                LteScheduler::ProportionalFair => {
                    // Weight ∝ instantaneous rate / smoothed average.
                    let weights: Vec<f64> = backlogged
                        .iter()
                        .map(|&u| bytes_per_prb[u] / pf_avg[u].max(1e-9))
                        .collect();
                    let total: f64 = weights.iter().sum();
                    let mut shares: Vec<usize> = weights
                        .iter()
                        .map(|w| ((w / total) * cfg.prbs as f64).floor() as usize)
                        .collect();
                    // Distribute the rounding remainder deterministically.
                    let mut used: usize = shares.iter().sum();
                    let n_shares = shares.len();
                    let mut i = 0;
                    while used < cfg.prbs {
                        shares[i % n_shares] += 1;
                        used += 1;
                        i += 1;
                    }
                    shares
                }
            };

            for (bi, &u) in backlogged.iter().enumerate() {
                let mut budget = (shares[bi] as f64 * bytes_per_prb[u]) as u64;
                let mut served = 0u64;
                let nf = ue_flows[u].len();
                // Serve this UE's flows round-robin within its budget.
                let mut idle_rounds = 0usize;
                while budget > 0 && idle_rounds < nf {
                    let fi = ue_flows[u][flow_rr[u] % nf];
                    flow_rr[u] = (flow_rr[u] + 1) % nf.max(1);
                    let Some(head) = queues[fi].front_mut() else {
                        idle_rounds += 1;
                        continue;
                    };
                    idle_rounds = 0;
                    let take = (head.remaining as u64).min(budget) as u32;
                    head.remaining -= take;
                    budget -= take as u64;
                    served += take as u64;
                    if head.remaining == 0 {
                        let done = *head;
                        queues[fi].pop_front();
                        // BLER draw: failed first transmissions mature
                        // through HARQ after harq_delay.
                        if rng.chance(cfg.bler) {
                            harq.push_back((tti_end + cfg.harq_delay, done.flow, done.idx));
                        } else {
                            outcomes[done.flow][done.idx].delivered = Some(tti_end);
                        }
                    }
                }
                pf_avg[u] = 0.9 * pf_avg[u] + 0.1 * served as f64;
            }
            // Decay the PF average of idle UEs.
            for (u, avg) in pf_avg.iter_mut().enumerate() {
                if !backlogged.contains(&u) {
                    *avg *= 0.9;
                }
            }
        }

        now = tti_end;
        // Fast-forward across idle gaps to keep long sparse traces cheap.
        if backlogged.is_empty() && harq.is_empty() {
            if next_arrival >= arrivals.len() {
                break;
            }
            let jump = arrivals[next_arrival].0;
            if jump > now {
                let whole_ttis = (jump.as_nanos() - now.as_nanos()) / 1_000_000;
                now += Duration::from_millis(whole_ttis);
            }
        }
    }

    // Any HARQ stragglers within the grace window still deliver.
    for (at, fi, pi) in harq {
        if at <= hard_stop {
            outcomes[fi][pi].delivered = Some(at);
        }
    }

    flows
        .iter()
        .zip(outcomes)
        .map(|(f, packets)| FlowOutcome {
            key: f.key,
            class: f.class,
            snr: SnrLevel::classify(ues[f.ue].snr_db),
            packets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::Protocol;

    fn cbr_flow(id: u32, ue: usize, n: usize, size: u32, gap_us: u64) -> OfferedLteFlow {
        let key = FlowKey::synthetic(id, id, 1, Protocol::Udp);
        let packets = (0..n)
            .map(|i| {
                Packet::new(
                    Instant::from_micros(i as u64 * gap_us),
                    size,
                    key,
                    Direction::Downlink,
                    i as u64,
                )
            })
            .collect();
        OfferedLteFlow {
            key,
            class: AppClass::Conferencing,
            ue,
            packets,
        }
    }

    #[test]
    fn light_load_fully_delivered_with_small_delay() {
        let ues = vec![LteUe::at_level(SnrLevel::High)];
        let flows = vec![cbr_flow(1, 0, 200, 1250, 10_000)]; // 1 Mbps
        let out = run_lte(&LteConfig::default(), &ues, &flows);
        assert_eq!(out[0].delivered_downlink(), 200);
        let q = out[0].downlink_qos();
        assert!(
            q.mean_delay < Duration::from_millis(15),
            "delay {}",
            q.mean_delay
        );
    }

    #[test]
    fn cell_rate_tracks_cqi_capacity() {
        let ues = vec![LteUe::at_level(SnrLevel::High)];
        // Saturate: 1400 B every 200 us (56 Mbps offered), 3 s.
        let flows = vec![cbr_flow(1, 0, 15_000, 1400, 200)];
        let out = run_lte(&LteConfig::default(), &ues, &flows);
        let q = out[0].downlink_qos();
        // 50 PRBs * bytes_per_prb(15) * 1000 TTIs ≈ 29-45 Mbps.
        assert!(
            (20_000_000.0..50_000_000.0).contains(&q.throughput_bps),
            "saturated LTE goodput {}",
            q.throughput_bps
        );
    }

    #[test]
    fn low_cqi_ue_gets_less_throughput_under_rr() {
        let ues = vec![
            LteUe::at_level(SnrLevel::High),
            LteUe::at_level(SnrLevel::Low),
        ];
        let flows = vec![
            cbr_flow(1, 0, 10_000, 1400, 300),
            cbr_flow(2, 1, 10_000, 1400, 300),
        ];
        let out = run_lte(&LteConfig::default(), &ues, &flows);
        let hi = out[0].downlink_qos().throughput_bps;
        let lo = out[1].downlink_qos().throughput_bps;
        assert!(lo < hi, "low-CQI UE should be slower: {lo} vs {hi}");
    }

    #[test]
    fn harq_adds_bounded_delay() {
        let cfg = LteConfig {
            bler: 0.5,
            ..LteConfig::default()
        };
        let ues = vec![LteUe::at_level(SnrLevel::High)];
        let flows = vec![cbr_flow(1, 0, 500, 1000, 5_000)];
        let out = run_lte(&cfg, &ues, &flows);
        // Everything still arrives (HARQ recovers), later on average.
        assert_eq!(out[0].delivered_downlink(), 500);
        let q = out[0].downlink_qos();
        assert!(
            q.mean_delay >= Duration::from_millis(4),
            "delay {}",
            q.mean_delay
        );
    }

    #[test]
    fn uplink_has_fixed_latency() {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let packets = vec![Packet::new(
            Instant::from_millis(3),
            200,
            key,
            Direction::Uplink,
            0,
        )];
        let flows = vec![OfferedLteFlow {
            key,
            class: AppClass::Web,
            ue: 0,
            packets,
        }];
        let ues = vec![LteUe::at_level(SnrLevel::High)];
        let out = run_lte(&LteConfig::default(), &ues, &flows);
        assert_eq!(out[0].packets[0].delivered, Some(Instant::from_millis(18)));
    }

    #[test]
    fn pf_scheduler_serves_both_ues_on_static_channels() {
        // With static channels, proportional fair converges to an
        // equal-resource share (rate/average weights cancel), so PF
        // must land near RR and starve nobody.
        let ues = vec![
            LteUe::at_level(SnrLevel::High),
            LteUe::at_level(SnrLevel::Low),
        ];
        let flows = vec![
            cbr_flow(1, 0, 12_000, 1400, 250),
            cbr_flow(2, 1, 12_000, 1400, 250),
        ];
        let rr = run_lte(&LteConfig::default(), &ues, &flows);
        let pf_cfg = LteConfig {
            scheduler: LteScheduler::ProportionalFair,
            ..LteConfig::default()
        };
        let pf = run_lte(&pf_cfg, &ues, &flows);
        for (i, (r, p)) in rr.iter().zip(&pf).enumerate() {
            let tr = r.downlink_qos().throughput_bps;
            let tp = p.downlink_qos().throughput_bps;
            assert!(tp > 0.0, "PF starved flow {i}");
            let ratio = tp.max(tr) / tp.min(tr).max(1.0);
            assert!(ratio < 1.5, "PF diverged from RR on flow {i}: {tp} vs {tr}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ues = vec![LteUe::at_level(SnrLevel::High)];
        let flows = vec![cbr_flow(1, 0, 300, 1000, 2_000)];
        let a = run_lte(&LteConfig::default(), &ues, &flows);
        let b = run_lte(&LteConfig::default(), &ues, &flows);
        assert_eq!(a[0].packets, b[0].packets);
    }

    #[test]
    fn sparse_trace_fast_forward_is_correct() {
        // Two packets an hour apart must both deliver (the TTI loop
        // fast-forwards across the idle gap rather than spinning).
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let packets = vec![
            Packet::new(Instant::ZERO, 500, key, Direction::Downlink, 0),
            Packet::new(Instant::from_secs(3600), 500, key, Direction::Downlink, 1),
        ];
        let flows = vec![OfferedLteFlow {
            key,
            class: AppClass::Web,
            ue: 0,
            packets,
        }];
        let ues = vec![LteUe::at_level(SnrLevel::High)];
        let out = run_lte(&LteConfig::default(), &ues, &flows);
        assert_eq!(out[0].delivered_downlink(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown UE")]
    fn bad_ue_index_panics() {
        let flows = vec![cbr_flow(1, 5, 1, 100, 1)];
        let _ = run_lte(&LteConfig::default(), &[], &flows);
    }
}
