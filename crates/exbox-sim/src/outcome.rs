//! Simulation outcomes: what happened to each offered packet.
//!
//! Both cell simulators produce the same shape of result — per flow,
//! the fate of every offered packet — from which the network-side QoS
//! sample (what ExBox's gateway sees) and the application-level QoE
//! ground truth (what the paper measured on instrumented phones) are
//! both derived. Keeping raw outcomes, rather than pre-aggregated
//! stats, is what lets the two views disagree the way they do in a
//! real deployment.

use exbox_net::{AppClass, Direction, FlowKey, Instant, QosMeter, QosSample};

use crate::phy::SnrLevel;

/// Fate of one offered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketOutcome {
    /// When the application offered the packet to the network.
    pub offered: Instant,
    /// Bytes on the wire.
    pub size: u32,
    /// Travel direction.
    pub direction: Direction,
    /// Delivery time at the far end, or `None` if dropped.
    pub delivered: Option<Instant>,
}

/// All outcomes for one flow.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// Application class of the flow.
    pub class: AppClass,
    /// SNR level of the owning client during the run.
    pub snr: SnrLevel,
    /// Per-packet fates, in offered order.
    pub packets: Vec<PacketOutcome>,
}

impl FlowOutcome {
    /// Network-side QoS over the flow's **downlink** packets — the
    /// direction the paper's gateway measures (§6.2 uses downlink
    /// flows only).
    pub fn downlink_qos(&self) -> QosSample {
        let mut meter = QosMeter::new();
        for p in &self.packets {
            if p.direction != Direction::Downlink {
                continue;
            }
            match p.delivered {
                Some(at) => meter.deliver(p.offered, at, p.size),
                None => meter.drop_packet(),
            }
        }
        meter.sample()
    }

    /// Count of delivered downlink packets.
    pub fn delivered_downlink(&self) -> usize {
        self.packets
            .iter()
            .filter(|p| p.direction == Direction::Downlink && p.delivered.is_some())
            .count()
    }

    /// First offered timestamp (flow start), if any packets exist.
    pub fn start(&self) -> Option<Instant> {
        self.packets.iter().map(|p| p.offered).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::{Duration, Protocol};

    fn outcome() -> FlowOutcome {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        FlowOutcome {
            key,
            class: AppClass::Streaming,
            snr: SnrLevel::High,
            packets: vec![
                PacketOutcome {
                    offered: Instant::ZERO,
                    size: 1000,
                    direction: Direction::Downlink,
                    delivered: Some(Instant::from_millis(10)),
                },
                PacketOutcome {
                    offered: Instant::from_millis(5),
                    size: 1000,
                    direction: Direction::Downlink,
                    delivered: None,
                },
                PacketOutcome {
                    offered: Instant::from_millis(20),
                    size: 1000,
                    direction: Direction::Downlink,
                    delivered: Some(Instant::from_millis(40)),
                },
                PacketOutcome {
                    offered: Instant::from_millis(1),
                    size: 100,
                    direction: Direction::Uplink,
                    delivered: Some(Instant::from_millis(2)),
                },
            ],
        }
    }

    #[test]
    fn qos_ignores_uplink() {
        let q = outcome().downlink_qos();
        // 2 delivered + 1 dropped downlink => loss 1/3.
        assert!((q.loss_ratio - 1.0 / 3.0).abs() < 1e-12);
        // Mean delay of delivered: (10 + 20)/2 = 15 ms.
        assert_eq!(q.mean_delay, Duration::from_millis(15));
    }

    #[test]
    fn delivered_count_and_start() {
        let o = outcome();
        assert_eq!(o.delivered_downlink(), 2);
        assert_eq!(o.start(), Some(Instant::ZERO));
    }

    #[test]
    fn empty_flow_outcome() {
        let mut o = outcome();
        o.packets.clear();
        assert_eq!(o.start(), None);
        assert_eq!(o.downlink_qos().throughput_bps, 0.0);
    }
}
