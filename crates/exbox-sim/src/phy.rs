//! PHY layer: path loss, SNR, and rate tables.
//!
//! The paper splits clients into SNR levels because SNR "directly
//! influences PHY layer bit rate and bit error rate, and thus has a
//! direct correlation with the overall QoS of the link" (§3). This
//! module provides exactly that coupling:
//!
//! * a log-distance path-loss model mapping client placement to SNR,
//! * the 802.11n (20 MHz, 1 spatial stream, long GI) MCS table mapping
//!   SNR to PHY rate and residual packet-error rate,
//! * the LTE CQI table (3GPP TS 36.213 Table 7.2.3-1) mapping SNR to
//!   CQI index and spectral efficiency.
//!
//! The paper's testbed anchors: "high SNR (placed close to the AP,
//! received signal strength of −30 dBm)" vs "low SNR (placed further
//! away, −80 dBm)" (§2), and its simulations use ≈53 dB vs ≈23 dB SNR
//! (§6.3); [`SnrLevel`] thresholds split the same way.

/// Discrete SNR level (`r = 2` levels: "In our experiments … only two
/// levels were found to be sufficient (low and high)", paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SnrLevel {
    /// Below the threshold: cell-edge client.
    Low,
    /// At or above the threshold: near-AP client.
    High,
}

impl SnrLevel {
    /// Number of SNR levels (`r` in the paper's notation).
    pub const COUNT: usize = 2;

    /// All levels in canonical order.
    pub const ALL: [SnrLevel; 2] = [SnrLevel::Low, SnrLevel::High];

    /// Canonical index in `0..COUNT`.
    pub const fn index(self) -> usize {
        match self {
            SnrLevel::Low => 0,
            SnrLevel::High => 1,
        }
    }

    /// Inverse of [`SnrLevel::index`].
    ///
    /// # Panics
    /// Panics if `i >= COUNT`.
    pub fn from_index(i: usize) -> SnrLevel {
        Self::ALL[i]
    }

    /// Classify a measured SNR in dB. The 38 dB threshold separates
    /// the paper's ≈53 dB "high" and ≈23 dB "low" operating points.
    pub fn classify(snr_db: f64) -> SnrLevel {
        if snr_db >= 38.0 {
            SnrLevel::High
        } else {
            SnrLevel::Low
        }
    }

    /// Representative SNR for synthetic clients at this level —
    /// the paper's §6.3 operating points.
    pub fn nominal_snr_db(self) -> f64 {
        match self {
            SnrLevel::Low => 23.0,
            SnrLevel::High => 53.0,
        }
    }
}

impl std::fmt::Display for SnrLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnrLevel::Low => f.write_str("low"),
            SnrLevel::High => f.write_str("high"),
        }
    }
}

/// Log-distance path-loss channel.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Transmit power in dBm (WiFi AP ≈ 20, LTE eNodeB 23 per §6.1).
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub pl0_db: f64,
    /// Path-loss exponent (≈2 free space, 3–4 indoor).
    pub exponent: f64,
    /// Receiver noise floor in dBm (thermal + NF for 20 MHz ≈ −94).
    pub noise_floor_dbm: f64,
}

impl Default for Channel {
    fn default() -> Self {
        Channel {
            tx_power_dbm: 20.0,
            pl0_db: 40.0,
            exponent: 3.0,
            noise_floor_dbm: -94.0,
        }
    }
}

impl Channel {
    /// Received signal strength at `distance_m` metres.
    ///
    /// # Panics
    /// Panics if `distance_m <= 0`.
    pub fn rss_dbm(&self, distance_m: f64) -> f64 {
        assert!(distance_m > 0.0, "distance must be positive");
        self.tx_power_dbm - self.pl0_db - 10.0 * self.exponent * (distance_m.max(1.0)).log10()
    }

    /// SNR in dB at `distance_m`.
    pub fn snr_db(&self, distance_m: f64) -> f64 {
        self.rss_dbm(distance_m) - self.noise_floor_dbm
    }

    /// Distance at which the channel yields `snr_db` (inverse of
    /// [`Channel::snr_db`]), clamped to ≥ 1 m. Lets tests place
    /// clients by target SNR.
    pub fn distance_for_snr(&self, snr_db: f64) -> f64 {
        let rss = snr_db + self.noise_floor_dbm;
        let exp10 = (self.tx_power_dbm - self.pl0_db - rss) / (10.0 * self.exponent);
        10f64.powf(exp10).max(1.0)
    }
}

/// 802.11n MCS 0–7 (20 MHz, 1 SS, 800 ns GI): minimum SNR and PHY
/// rate. The thresholds are calibrated so the paper's simulation
/// operating points land meaningfully apart: ≈23 dB ("low", §6.3)
/// selects MCS3 (26 Mbps) while ≈53 dB ("high") selects MCS7
/// (65 Mbps) — matching the ns-3 YansWifi SNR scale the paper used
/// rather than vendor RSSI sensitivity tables.
const WIFI_MCS: [(f64, f64); 8] = [
    (8.0, 6_500_000.0),
    (13.0, 13_000_000.0),
    (17.0, 19_500_000.0),
    (21.0, 26_000_000.0),
    (25.0, 39_000_000.0),
    (29.0, 52_000_000.0),
    (33.0, 58_500_000.0),
    (37.0, 65_000_000.0),
];

/// Select the 802.11n PHY rate for a given SNR: the highest MCS whose
/// threshold is met, or the most robust rate when below MCS0.
pub fn wifi_phy_rate_bps(snr_db: f64) -> f64 {
    let mut rate = WIFI_MCS[0].1;
    for &(thr, r) in &WIFI_MCS {
        if snr_db >= thr {
            rate = r;
        }
    }
    rate
}

/// Residual per-packet error rate at a given SNR for the MCS selected
/// by [`wifi_phy_rate_bps`]: small when comfortably above the MCS
/// threshold, growing toward 0.5 at the threshold edge. Captures the
/// paper's SNR → bit-error-rate coupling.
pub fn wifi_packet_error_rate(snr_db: f64) -> f64 {
    // Margin above the selected MCS's threshold.
    let mut sel_thr = WIFI_MCS[0].0;
    for &(thr, _) in &WIFI_MCS {
        if snr_db >= thr {
            sel_thr = thr;
        }
    }
    let margin = (snr_db - sel_thr).max(-5.0);
    (0.35 * (-margin / 2.0).exp()).clamp(0.001, 0.5)
}

/// 3GPP CQI table (TS 36.213 Table 7.2.3-1): spectral efficiency in
/// bits/symbol for CQI 1–15.
const LTE_CQI_EFF: [f64; 15] = [
    0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223, 3.9023,
    4.5234, 5.1152, 5.5547,
];

/// Map SNR (dB) to CQI index 1–15, on the same calibrated scale as
/// the WiFi table: the paper's ≈23 dB "low" point lands on CQI 8 and
/// its ≈53 dB "high" point saturates at CQI 15.
pub fn lte_cqi_from_snr(snr_db: f64) -> u8 {
    ((snr_db / 3.5 + 1.5).round() as i64).clamp(1, 15) as u8
}

/// Spectral efficiency (bits/symbol) for a CQI index.
///
/// # Panics
/// Panics unless `1 <= cqi <= 15`.
pub fn lte_spectral_efficiency(cqi: u8) -> f64 {
    assert!((1..=15).contains(&cqi), "CQI must be 1–15");
    LTE_CQI_EFF[cqi as usize - 1]
}

/// Bytes one LTE physical resource block carries in one TTI (1 ms) at
/// the given CQI: 12 subcarriers × 14 symbols × efficiency / 8, less
/// ≈25% control/reference overhead.
pub fn lte_bytes_per_prb(cqi: u8) -> f64 {
    lte_spectral_efficiency(cqi) * 12.0 * 14.0 * 0.75 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_level_classify_and_nominal() {
        assert_eq!(SnrLevel::classify(53.0), SnrLevel::High);
        assert_eq!(SnrLevel::classify(23.0), SnrLevel::Low);
        assert_eq!(SnrLevel::classify(38.0), SnrLevel::High);
        for l in SnrLevel::ALL {
            assert_eq!(SnrLevel::classify(l.nominal_snr_db()), l);
            assert_eq!(SnrLevel::from_index(l.index()), l);
        }
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let ch = Channel::default();
        let snrs: Vec<f64> = [1.0, 5.0, 10.0, 30.0, 100.0]
            .iter()
            .map(|&d| ch.snr_db(d))
            .collect();
        for w in snrs.windows(2) {
            assert!(w[0] > w[1], "SNR must fall with distance: {snrs:?}");
        }
    }

    #[test]
    fn distance_for_snr_inverts_snr() {
        let ch = Channel::default();
        for target in [20.0, 35.0, 50.0] {
            let d = ch.distance_for_snr(target);
            let snr = ch.snr_db(d);
            assert!((snr - target).abs() < 0.5, "target {target}, got {snr}");
        }
    }

    #[test]
    fn near_ap_snr_is_high_level() {
        let ch = Channel::default();
        assert_eq!(SnrLevel::classify(ch.snr_db(2.0)), SnrLevel::High);
        assert_eq!(SnrLevel::classify(ch.snr_db(60.0)), SnrLevel::Low);
    }

    #[test]
    fn wifi_rate_monotone_in_snr() {
        let mut last = 0.0;
        for snr in [0.0, 6.0, 9.0, 12.0, 15.0, 19.0, 23.0, 27.0, 31.0, 50.0] {
            let r = wifi_phy_rate_bps(snr);
            assert!(r >= last, "rate fell at snr {snr}");
            last = r;
        }
        assert_eq!(wifi_phy_rate_bps(53.0), 65_000_000.0);
        assert_eq!(wifi_phy_rate_bps(0.0), 6_500_000.0);
    }

    #[test]
    fn low_snr_clients_get_low_rates() {
        // The rate-anomaly precondition: the paper's low-SNR operating
        // point (23 dB) gets a materially lower PHY rate than high
        // (53 dB).
        let low = wifi_phy_rate_bps(SnrLevel::Low.nominal_snr_db());
        let high = wifi_phy_rate_bps(SnrLevel::High.nominal_snr_db());
        assert!(low <= high / 1.2, "low {low} vs high {high}");
    }

    #[test]
    fn per_decreases_with_snr() {
        let p_lo = wifi_packet_error_rate(23.0);
        let p_hi = wifi_packet_error_rate(53.0);
        assert!(p_lo > p_hi);
        assert!((0.001..=0.5).contains(&p_lo));
        assert!((0.001..=0.5).contains(&p_hi));
    }

    #[test]
    fn cqi_mapping_monotone_and_clamped() {
        assert_eq!(lte_cqi_from_snr(-10.0), 1);
        assert_eq!(lte_cqi_from_snr(100.0), 15);
        let mut last = 0;
        for snr in (0..30).map(|s| s as f64) {
            let c = lte_cqi_from_snr(snr);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn cqi_efficiency_table_monotone() {
        for c in 1..15u8 {
            assert!(lte_spectral_efficiency(c + 1) > lte_spectral_efficiency(c));
        }
        assert!((lte_spectral_efficiency(15) - 5.5547).abs() < 1e-9);
    }

    #[test]
    fn prb_bytes_in_plausible_range() {
        // CQI 15: ~5.55 * 126 / 8 * ... => tens of bytes per PRB.
        let b = lte_bytes_per_prb(15);
        assert!((50.0..150.0).contains(&b), "bytes/PRB {b}");
        // 50 PRBs at CQI 15 ≈ 35-45 Mbps.
        let mbps = b * 50.0 * 8.0 / 1e3; // per TTI(1ms) => kbit; /1e3 => Mbps
        assert!((25.0..60.0).contains(&mbps), "cell rate {mbps} Mbps");
    }

    #[test]
    #[should_panic(expected = "CQI")]
    fn cqi_zero_panics() {
        let _ = lte_spectral_efficiency(0);
    }
}
