//! Packet-level 802.11 DCF simulation.
//!
//! A discrete-event model of one WiFi cell (the paper's §6.1
//! "802.11n 5 GHz WLAN with varying number of clients connected
//! … through an access point"). The model captures the three
//! mechanisms the ExCR depends on:
//!
//! 1. **Contention** — per-packet transmission opportunities are
//!    granted uniformly at random among backlogged stations (the DCF
//!    long-run behaviour), with collision probability growing in the
//!    number of contenders; collisions waste airtime and trigger
//!    retries.
//! 2. **Rate anomaly** — airtime per packet is `overhead + size/rate`
//!    where `rate` comes from the *receiving client's* SNR, so a
//!    low-SNR client's packets occupy the medium longer and throttle
//!    everyone (the Fig. 3 effect: high-SNR clients suffer when
//!    low-SNR clients join).
//! 3. **SNR-dependent loss** — residual packet error rates rise as
//!    SNR falls, consuming the retry budget.
//!
//! The AP serves per-flow queues round-robin (WMM-style fair
//! queueing); clients hold their own uplink queues. Queues are
//! deliberately deep (`queue_limit`), reflecting real AP buffering —
//! overload therefore shows up first as *delay* (bufferbloat), then as
//! drops, exactly the progression that degrades streaming startup and
//! conferencing PSNR in the paper's experiments.

use std::collections::VecDeque;

use exbox_net::{AppClass, Direction, FlowKey, Instant, Packet};
use exbox_traffic::dist::Rng;

use crate::event::EventQueue;
use crate::outcome::{FlowOutcome, PacketOutcome};
use crate::phy::{wifi_packet_error_rate, wifi_phy_rate_bps, SnrLevel};
use exbox_net::Duration;

/// A shaped backhaul between the remote servers and the cell — the
/// paper's `tc`/`netem` throttling point (Fig. 11 shapes the network
/// to 200 ms latency; Fig. 12 sweeps rate × latency). Downlink
/// packets traverse it before reaching the AP/eNodeB queues.
#[derive(Debug, Clone, Copy)]
pub struct Backhaul {
    /// Serialisation rate, bits/s.
    pub rate_bps: u64,
    /// Added constant delay.
    pub delay: Duration,
    /// Random loss probability in `[0, 1)`.
    pub loss: f64,
}

impl Backhaul {
    /// An effectively transparent backhaul (1 Gbps, 0.3 ms — the
    /// paper's §6.1 server links).
    pub fn transparent() -> Self {
        Backhaul {
            rate_bps: 1_000_000_000,
            delay: Duration::from_micros(300),
            loss: 0.0,
        }
    }

    /// The Fig. 11 throttled profile: 200 ms added latency.
    pub fn throttled_200ms(rate_bps: u64) -> Self {
        Backhaul {
            rate_bps,
            delay: Duration::from_millis(200),
            loss: 0.0,
        }
    }
}

/// Shift downlink arrivals through the backhaul shaper; returns the
/// per-(flow, idx) entry time at the cell, or `None` when dropped.
pub(crate) fn apply_backhaul(
    backhaul: &Backhaul,
    mut items: Vec<(Instant, usize, usize, u32)>,
    seed: u64,
) -> std::collections::HashMap<(usize, usize), Option<Instant>> {
    use exbox_net::shaper::LinkVerdict;
    items.sort_by_key(|&(t, f, i, _)| (t, f, i));
    let mut link = exbox_net::NetemLink::new(
        backhaul.rate_bps,
        backhaul.delay,
        backhaul.loss,
        64 << 20,
        seed | 1,
    );
    items
        .into_iter()
        .map(|(t, f, i, size)| {
            let entry = match link.offer(t, size) {
                LinkVerdict::Deliver(at) => Some(at),
                _ => None,
            };
            ((f, i), entry)
        })
        .collect()
}

/// Configuration of the WiFi cell model.
#[derive(Debug, Clone)]
pub struct WifiConfig {
    /// Fixed per-transmission overhead: DIFS + mean backoff + PHY
    /// preamble + SIFS + ACK (≈190 µs for 802.11n).
    pub per_tx_overhead: Duration,
    /// Per-flow queue depth in packets (AP buffering).
    pub queue_limit: usize,
    /// Retry budget per packet before it is dropped.
    pub retry_limit: u32,
    /// Per-station slot attempt probability in the collision model:
    /// `P(collision) = 1 − (1 − τ)^(contenders−1)`.
    pub tau: f64,
    /// How long after the last offered packet the cell keeps draining
    /// queues before declaring leftovers lost.
    pub drain_grace: Duration,
    /// RNG seed (contention winners, collisions, packet errors).
    pub seed: u64,
    /// Backhaul between servers and the AP.
    pub backhaul: Backhaul,
}

impl Default for WifiConfig {
    fn default() -> Self {
        WifiConfig {
            per_tx_overhead: Duration::from_micros(190),
            queue_limit: 3_000,
            retry_limit: 7,
            tau: 1.0 / 32.0,
            drain_grace: Duration::from_secs(10),
            seed: 0x31F1,
            backhaul: Backhaul::transparent(),
        }
    }
}

/// One wireless client in the cell.
#[derive(Debug, Clone)]
pub struct WifiClient {
    /// Link SNR in dB (from placement via [`crate::phy::Channel`], or
    /// set directly from an [`SnrLevel`] nominal value).
    pub snr_db: f64,
    /// Mobility: SNR changes at the given instants (paper §4.3 —
    /// "the wireless link quality … can change depending on the
    /// distance of device from AP"). Entries must be time-sorted;
    /// before the first entry `snr_db` applies.
    pub mobility: Vec<(Instant, f64)>,
}

impl WifiClient {
    /// Client at the nominal SNR of a discrete level.
    pub fn at_level(level: SnrLevel) -> Self {
        WifiClient {
            snr_db: level.nominal_snr_db(),
            mobility: Vec::new(),
        }
    }

    /// Stationary client at a raw SNR.
    pub fn at_snr(snr_db: f64) -> Self {
        WifiClient {
            snr_db,
            mobility: Vec::new(),
        }
    }

    /// The client's SNR at a given instant.
    pub fn snr_at(&self, t: Instant) -> f64 {
        let mut snr = self.snr_db;
        for &(at, v) in &self.mobility {
            if at <= t {
                snr = v;
            } else {
                break;
            }
        }
        snr
    }
}

/// One flow offered to the cell: its owning client and its offered
/// packet trace (time-sorted).
#[derive(Debug, Clone)]
pub struct OfferedFlow {
    /// Flow 5-tuple.
    pub key: FlowKey,
    /// Application class.
    pub class: AppClass,
    /// Index into the client array.
    pub client: usize,
    /// Offered packets, sorted by timestamp.
    pub packets: Vec<Packet>,
}

/// Queued packet reference.
#[derive(Debug, Clone, Copy)]
struct QueuedPkt {
    flow: usize,
    idx: usize,
    retries: u32,
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Offered packet `idx` of flow `flow` reaches its queue.
    Arrival { flow: usize, idx: usize },
    /// The in-flight transmission completes.
    TxDone { success: bool },
}

/// Station identifier: the AP or a client index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Station {
    Ap,
    Client(usize),
}

/// Run the cell simulation; returns one [`FlowOutcome`] per offered
/// flow, in input order.
///
/// # Panics
/// Panics if a flow references a client outside `clients`, or a
/// flow's packet trace is not time-sorted.
pub fn run_wifi(
    cfg: &WifiConfig,
    clients: &[WifiClient],
    flows: &[OfferedFlow],
) -> Vec<FlowOutcome> {
    let (out, wall_ns) = exbox_obs::time_ns(|| run_wifi_inner(cfg, clients, flows));
    let reg = exbox_obs::global();
    reg.counter("sim.wifi_runs").inc();
    reg.histogram("sim.run_wall_ns", &exbox_obs::buckets::latency_ns())
        .record(wall_ns);
    reg.counter("sim.packets_simulated")
        .add(flows.iter().map(|f| f.packets.len() as u64).sum());
    out
}

fn run_wifi_inner(
    cfg: &WifiConfig,
    clients: &[WifiClient],
    flows: &[OfferedFlow],
) -> Vec<FlowOutcome> {
    for f in flows {
        assert!(f.client < clients.len(), "flow references unknown client");
        assert!(
            f.packets
                .windows(2)
                .all(|w| w[0].timestamp <= w[1].timestamp),
            "offered trace must be time-sorted"
        );
    }

    let mut outcomes: Vec<Vec<PacketOutcome>> = flows
        .iter()
        .map(|f| {
            f.packets
                .iter()
                .map(|p| PacketOutcome {
                    offered: p.timestamp,
                    size: p.size,
                    direction: p.direction,
                    delivered: None,
                })
                .collect()
        })
        .collect();

    for c in clients {
        assert!(
            c.mobility.windows(2).all(|w| w[0].0 <= w[1].0),
            "mobility schedule must be time-sorted"
        );
    }
    // Per-client PHY parameters at an instant (mobility-aware).
    let rate_at = |ci: usize, t: Instant| wifi_phy_rate_bps(clients[ci].snr_at(t));
    let per_at = |ci: usize, t: Instant| wifi_packet_error_rate(clients[ci].snr_at(t));

    // Queues: AP holds one downlink queue per flow; each client one
    // uplink FIFO (uplink volume is small).
    let mut ap_queues: Vec<VecDeque<QueuedPkt>> = vec![VecDeque::new(); flows.len()];
    let mut ap_rr = 0usize;
    let mut ap_backlog = 0usize;
    let mut cl_queues: Vec<VecDeque<QueuedPkt>> = vec![VecDeque::new(); clients.len()];

    // Downlink packets first traverse the backhaul shaper.
    let mut downlink_items = Vec::new();
    for (fi, f) in flows.iter().enumerate() {
        for (pi, p) in f.packets.iter().enumerate() {
            if p.direction == Direction::Downlink {
                downlink_items.push((p.timestamp, fi, pi, p.size));
            }
        }
    }
    let entries = apply_backhaul(&cfg.backhaul, downlink_items, cfg.seed ^ 0xBACC);

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut last_offer = Instant::ZERO;
    for (fi, f) in flows.iter().enumerate() {
        for (pi, p) in f.packets.iter().enumerate() {
            let at = match p.direction {
                Direction::Downlink => match entries[&(fi, pi)] {
                    Some(at) => at,
                    None => continue, // dropped at the backhaul
                },
                Direction::Uplink => p.timestamp,
            };
            q.schedule(at, Ev::Arrival { flow: fi, idx: pi });
            last_offer = last_offer.max(at);
        }
    }
    let hard_stop = last_offer + cfg.drain_grace;

    let mut rng = Rng::new(cfg.seed).derive(0x21F1);
    let mut busy = false;
    // The packet in flight: (station, queued entry).
    let mut in_flight: Option<(Station, QueuedPkt)> = None;

    // Pick the next transmission if the medium is idle.
    // Returns the event to schedule.
    fn pick_station(
        ap_backlog: usize,
        cl_queues: &[VecDeque<QueuedPkt>],
        rng: &mut Rng,
    ) -> Option<Station> {
        let mut contenders: Vec<Station> = Vec::new();
        if ap_backlog > 0 {
            contenders.push(Station::Ap);
        }
        for (ci, cq) in cl_queues.iter().enumerate() {
            if !cq.is_empty() {
                contenders.push(Station::Client(ci));
            }
        }
        if contenders.is_empty() {
            None
        } else {
            Some(contenders[rng.index(contenders.len())])
        }
    }

    // Count of currently backlogged stations (for collision prob).
    fn contender_count(ap_backlog: usize, cl_queues: &[VecDeque<QueuedPkt>]) -> usize {
        (ap_backlog > 0) as usize + cl_queues.iter().filter(|q| !q.is_empty()).count()
    }

    let mut now = Instant::ZERO;
    loop {
        // Start a transmission whenever the medium is idle and
        // something is queued.
        if !busy {
            if let Some(station) = pick_station(ap_backlog, &cl_queues, &mut rng) {
                // Select the head packet: AP round-robins its flow
                // queues; clients serve FIFO.
                let entry = match station {
                    Station::Ap => {
                        let n = ap_queues.len();
                        let mut found = None;
                        for off in 0..n {
                            let fi = (ap_rr + off) % n;
                            if let Some(&e) = ap_queues[fi].front() {
                                found = Some((fi, e));
                                break;
                            }
                        }
                        let (fi, e) = found.expect("ap_backlog > 0 implies a queued packet");
                        ap_rr = (fi + 1) % n;
                        e
                    }
                    Station::Client(ci) => *cl_queues[ci].front().expect("non-empty client queue"),
                };
                let flow = &flows[entry.flow];
                let client = flow.client;
                let size = flows[entry.flow].packets[entry.idx].size;
                let airtime = cfg.per_tx_overhead
                    + Duration::transmission(size as u64, rate_at(client, now) as u64);
                // Collision roll against the other contenders.
                let others = contender_count(ap_backlog, &cl_queues).saturating_sub(1);
                let p_coll = 1.0 - (1.0 - cfg.tau).powi(others as i32);
                let collided = rng.chance(p_coll);
                let errored = !collided && rng.chance(per_at(client, now));
                let success = !collided && !errored;
                q.schedule(now + airtime, Ev::TxDone { success });
                busy = true;
                in_flight = Some((station, entry));
            }
        }

        let Some((t, ev)) = q.next() else { break };
        if t > hard_stop {
            break;
        }
        now = t;
        match ev {
            Ev::Arrival { flow, idx } => {
                let dir = flows[flow].packets[idx].direction;
                let entry = QueuedPkt {
                    flow,
                    idx,
                    retries: 0,
                };
                match dir {
                    Direction::Downlink => {
                        if ap_queues[flow].len() < cfg.queue_limit {
                            ap_queues[flow].push_back(entry);
                            ap_backlog += 1;
                        }
                        // else: tail drop; outcome stays undelivered.
                    }
                    Direction::Uplink => {
                        let ci = flows[flow].client;
                        if cl_queues[ci].len() < cfg.queue_limit {
                            cl_queues[ci].push_back(entry);
                        }
                    }
                }
            }
            Ev::TxDone { success } => {
                busy = false;
                let (station, entry) = in_flight.take().expect("TxDone without transmission");
                let dir = flows[entry.flow].packets[entry.idx].direction;
                let queue: &mut VecDeque<QueuedPkt> = match station {
                    Station::Ap => &mut ap_queues[entry.flow],
                    Station::Client(ci) => &mut cl_queues[ci],
                };
                if success {
                    let head = queue.pop_front().expect("in-flight packet at queue head");
                    debug_assert_eq!(head.flow, entry.flow);
                    if dir == Direction::Downlink {
                        ap_backlog -= 1;
                    }
                    outcomes[entry.flow][entry.idx].delivered = Some(now);
                } else {
                    let head = queue.front_mut().expect("in-flight packet at queue head");
                    head.retries += 1;
                    if head.retries > cfg.retry_limit {
                        queue.pop_front();
                        if dir == Direction::Downlink {
                            ap_backlog -= 1;
                        }
                        // Dropped after retry exhaustion.
                    }
                }
            }
        }
    }

    flows
        .iter()
        .zip(outcomes)
        .map(|(f, packets)| FlowOutcome {
            key: f.key,
            class: f.class,
            snr: SnrLevel::classify(clients[f.client].snr_db),
            // (Mobility may change the level mid-run; the outcome
            // records the admission-time level, which is what the
            // traffic matrix encoded.)
            packets,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::Protocol;

    /// A CBR downlink flow: `n` packets of `size` every `gap_us`.
    fn cbr_flow(id: u32, client: usize, n: usize, size: u32, gap_us: u64) -> OfferedFlow {
        let key = FlowKey::synthetic(id, id, 1, Protocol::Udp);
        let packets = (0..n)
            .map(|i| {
                Packet::new(
                    Instant::from_micros(i as u64 * gap_us),
                    size,
                    key,
                    Direction::Downlink,
                    i as u64,
                )
            })
            .collect();
        OfferedFlow {
            key,
            class: AppClass::Conferencing,
            client,
            packets,
        }
    }

    #[test]
    fn light_load_delivers_everything_promptly() {
        let clients = vec![WifiClient::at_level(SnrLevel::High)];
        // 1 Mbps offered into a ~20+ Mbps cell.
        let flows = vec![cbr_flow(1, 0, 100, 1250, 10_000)];
        let out = run_wifi(&WifiConfig::default(), &clients, &flows);
        assert_eq!(out[0].delivered_downlink(), 100);
        let q = out[0].downlink_qos();
        assert!(
            q.mean_delay < Duration::from_millis(5),
            "delay {}",
            q.mean_delay
        );
        assert!(q.loss_ratio < 0.01);
    }

    #[test]
    fn cell_capacity_is_phy_bound() {
        // Single high-SNR client, saturating offered load.
        let clients = vec![WifiClient::at_level(SnrLevel::High)];
        // 40 Mbps offered: 1400 B every 280 us for 4 s.
        let flows = vec![cbr_flow(1, 0, 14_000, 1400, 280)];
        let out = run_wifi(&WifiConfig::default(), &clients, &flows);
        let q = out[0].downlink_qos();
        // 65 Mbps PHY with ~190us overhead per ~172us payload =>
        // ~30 Mbps goodput ceiling; check we're in a sane band.
        assert!(
            (15_000_000.0..40_000_000.0).contains(&q.throughput_bps),
            "saturated goodput {}",
            q.throughput_bps
        );
    }

    #[test]
    fn low_snr_client_throttles_high_snr_peer() {
        // The Fig. 3 rate anomaly: adding a low-SNR client reduces the
        // high-SNR client's goodput under saturation.
        let mk_flows = |second_client: usize| {
            vec![
                cbr_flow(1, 0, 8_000, 1400, 400),
                cbr_flow(2, second_client, 8_000, 1400, 400),
            ]
        };
        let both_high = vec![
            WifiClient::at_level(SnrLevel::High),
            WifiClient::at_level(SnrLevel::High),
        ];
        let mixed = vec![
            WifiClient::at_level(SnrLevel::High),
            WifiClient::at_level(SnrLevel::Low),
        ];
        let out_hh = run_wifi(&WifiConfig::default(), &both_high, &mk_flows(1));
        let out_hl = run_wifi(&WifiConfig::default(), &mixed, &mk_flows(1));
        let rate_peer_high = out_hh[0].downlink_qos().throughput_bps;
        let rate_peer_low = out_hl[0].downlink_qos().throughput_bps;
        assert!(
            rate_peer_low < rate_peer_high * 0.8,
            "high-SNR flow unaffected by low-SNR peer: {rate_peer_low} vs {rate_peer_high}"
        );
    }

    #[test]
    fn overload_builds_delay_then_loss() {
        let clients = vec![WifiClient::at_level(SnrLevel::High)];
        // 2 x 40 Mbps offered into one cell: far beyond capacity.
        let flows = vec![
            cbr_flow(1, 0, 10_000, 1400, 280),
            cbr_flow(2, 0, 10_000, 1400, 280),
        ];
        let cfg = WifiConfig {
            drain_grace: Duration::from_millis(100),
            ..WifiConfig::default()
        };
        let out = run_wifi(&cfg, &clients, &flows);
        let q = out[0].downlink_qos();
        assert!(
            q.mean_delay > Duration::from_millis(50),
            "expected bufferbloat, delay {}",
            q.mean_delay
        );
        assert!(q.loss_ratio > 0.2, "expected drops, loss {}", q.loss_ratio);
    }

    #[test]
    fn deterministic_given_seed() {
        let clients = vec![WifiClient::at_level(SnrLevel::High)];
        let flows = vec![cbr_flow(1, 0, 500, 1200, 1_000)];
        let a = run_wifi(&WifiConfig::default(), &clients, &flows);
        let b = run_wifi(&WifiConfig::default(), &clients, &flows);
        assert_eq!(a[0].packets, b[0].packets);
    }

    #[test]
    fn uplink_packets_are_served() {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let packets = (0..50)
            .map(|i| Packet::new(Instant::from_millis(i * 10), 200, key, Direction::Uplink, i))
            .collect();
        let flows = vec![OfferedFlow {
            key,
            class: AppClass::Web,
            client: 0,
            packets,
        }];
        let clients = vec![WifiClient::at_level(SnrLevel::High)];
        let out = run_wifi(&WifiConfig::default(), &clients, &flows);
        let delivered = out[0]
            .packets
            .iter()
            .filter(|p| p.delivered.is_some())
            .count();
        assert!(delivered >= 48, "uplink delivered {delivered}/50");
    }

    #[test]
    fn fair_share_among_equal_flows() {
        let clients = vec![
            WifiClient::at_level(SnrLevel::High),
            WifiClient::at_level(SnrLevel::High),
        ];
        let flows = vec![
            cbr_flow(1, 0, 8_000, 1400, 280),
            cbr_flow(2, 1, 8_000, 1400, 280),
        ];
        let out = run_wifi(&WifiConfig::default(), &clients, &flows);
        let r1 = out[0].downlink_qos().throughput_bps;
        let r2 = out[1].downlink_qos().throughput_bps;
        let ratio = r1.max(r2) / r1.min(r2);
        assert!(ratio < 1.2, "unfair split {r1} vs {r2}");
    }

    #[test]
    fn snr_at_follows_schedule() {
        let c = WifiClient {
            snr_db: 53.0,
            mobility: vec![(Instant::from_secs(2), 14.0), (Instant::from_secs(4), 40.0)],
        };
        assert_eq!(c.snr_at(Instant::ZERO), 53.0);
        assert_eq!(c.snr_at(Instant::from_secs(2)), 14.0);
        assert_eq!(c.snr_at(Instant::from_secs(3)), 14.0);
        assert_eq!(c.snr_at(Instant::from_secs(10)), 40.0);
    }

    #[test]
    fn mobile_client_throughput_drops_after_walking_away() {
        // Saturating flow; client walks from high SNR to cell edge at
        // t = 2 s. Goodput in the second half must drop hard.
        let mut client = WifiClient::at_level(SnrLevel::High);
        client.mobility = vec![(Instant::from_secs(2), 12.0)];
        let flows = vec![cbr_flow(1, 0, 14_000, 1400, 280)]; // ~4 s of 40 Mbps
        let out = run_wifi(&WifiConfig::default(), &[client], &flows);
        let rate_in = |lo_s: u64, hi_s: u64| -> f64 {
            let bytes: u64 = out[0]
                .packets
                .iter()
                .filter_map(|p| p.delivered.map(|at| (at, p.size)))
                .filter(|&(at, _)| at >= Instant::from_secs(lo_s) && at < Instant::from_secs(hi_s))
                .map(|(_, s)| s as u64)
                .sum();
            bytes as f64 * 8.0 / (hi_s - lo_s) as f64
        };
        let before = rate_in(0, 2);
        let after = rate_in(2, 4);
        assert!(
            after < before * 0.5,
            "mobility should halve goodput: before {before} after {after}"
        );
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_mobility_panics() {
        let mut client = WifiClient::at_level(SnrLevel::High);
        client.mobility = vec![(Instant::from_secs(4), 20.0), (Instant::from_secs(2), 30.0)];
        let flows = vec![cbr_flow(1, 0, 10, 100, 1_000)];
        let _ = run_wifi(&WifiConfig::default(), &[client], &flows);
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn bad_client_index_panics() {
        let flows = vec![cbr_flow(1, 3, 1, 100, 1)];
        let _ = run_wifi(&WifiConfig::default(), &[], &flows);
    }
}
