//! Cross-validation: the fluid model must agree with the packet-level
//! DES on the regimes the figure harnesses rely on, otherwise the
//! scale-up figures (which use the fluid model) would not be
//! representative of the testbed figures (which use the DES).

use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet, Protocol};
use exbox_sim::fluid::{FluidFlow, FluidWifi};
use exbox_sim::phy::SnrLevel;
use exbox_sim::wifi::{run_wifi, OfferedFlow, WifiClient, WifiConfig};

/// Build a CBR downlink flow at `rate_bps` for `secs`.
fn cbr(id: u32, client: usize, rate_bps: f64, secs: f64) -> OfferedFlow {
    let key = FlowKey::synthetic(id, id, 1, Protocol::Udp);
    let size = 1400u32;
    let gap = Duration::from_secs_f64(size as f64 * 8.0 / rate_bps);
    let n = (secs / gap.as_secs_f64()) as usize;
    let packets = (0..n)
        .map(|i| {
            Packet::new(
                Instant::ZERO + gap * i as u64,
                size,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect();
    OfferedFlow {
        key,
        class: AppClass::Streaming,
        client,
        packets,
    }
}

fn fluid_of(flows: &[(SnrLevel, f64)]) -> Vec<FluidFlow> {
    flows
        .iter()
        .map(|&(snr, rate)| FluidFlow::new(AppClass::Streaming, snr, rate, 1400))
        .collect()
}

/// Run both models on the same scenario and compare achieved
/// downlink throughput per flow within `tol` relative error.
fn compare(flows: &[(SnrLevel, f64)], secs: f64, tol: f64) {
    let clients: Vec<WifiClient> = flows
        .iter()
        .map(|&(snr, _)| WifiClient::at_level(snr))
        .collect();
    let offered: Vec<OfferedFlow> = flows
        .iter()
        .enumerate()
        .map(|(i, &(_, rate))| cbr(i as u32 + 1, i, rate, secs))
        .collect();
    let cfg = WifiConfig {
        drain_grace: Duration::from_millis(200),
        ..WifiConfig::default()
    };
    let des = run_wifi(&cfg, &clients, &offered);
    let fl = FluidWifi::default().predict(&fluid_of(flows));
    for (i, (d, f)) in des.iter().zip(&fl).enumerate() {
        let td = d.downlink_qos().throughput_bps;
        let tf = f.throughput_bps;
        let rel = (td - tf).abs() / tf.max(1.0);
        assert!(
            rel < tol,
            "flow {i}: DES {td:.0} vs fluid {tf:.0} (rel {rel:.2})"
        );
    }
}

#[test]
fn undersubscribed_agreement() {
    // 3 light flows: both models must deliver the offered rates.
    compare(
        &[
            (SnrLevel::High, 2_000_000.0),
            (SnrLevel::High, 1_500_000.0),
            (SnrLevel::Low, 1_000_000.0),
        ],
        4.0,
        0.10,
    );
}

#[test]
fn saturated_equal_flows_agreement() {
    // 4 saturating high-SNR flows: both models should settle near the
    // same per-flow goodput (packet fairness).
    compare(
        &[
            (SnrLevel::High, 10_000_000.0),
            (SnrLevel::High, 10_000_000.0),
            (SnrLevel::High, 10_000_000.0),
            (SnrLevel::High, 10_000_000.0),
        ],
        4.0,
        0.30,
    );
}

#[test]
fn mixed_snr_saturated_agreement() {
    // The rate-anomaly regime: 2 low + 2 high saturating flows.
    compare(
        &[
            (SnrLevel::Low, 10_000_000.0),
            (SnrLevel::Low, 10_000_000.0),
            (SnrLevel::High, 10_000_000.0),
            (SnrLevel::High, 10_000_000.0),
        ],
        4.0,
        0.35,
    );
}

#[test]
fn both_models_agree_on_anomaly_direction() {
    // Qualitative check: adding low-SNR peers reduces a high-SNR
    // flow's goodput in BOTH models.
    let secs = 3.0;
    let high_only = [(SnrLevel::High, 8_000_000.0); 4];
    let mut mixed = high_only;
    mixed[0].0 = SnrLevel::Low;
    mixed[1].0 = SnrLevel::Low;

    // DES.
    let run = |spec: &[(SnrLevel, f64)]| {
        let clients: Vec<WifiClient> = spec.iter().map(|&(s, _)| WifiClient::at_level(s)).collect();
        let flows: Vec<OfferedFlow> = spec
            .iter()
            .enumerate()
            .map(|(i, &(_, r))| cbr(i as u32 + 1, i, r, secs))
            .collect();
        run_wifi(&WifiConfig::default(), &clients, &flows)
            .last()
            .expect("flows non-empty")
            .downlink_qos()
            .throughput_bps
    };
    let des_drop = run(&mixed) < run(&high_only) * 0.95;

    // Fluid.
    let cell = FluidWifi::default();
    let f_high = cell.predict(&fluid_of(&high_only));
    let f_mixed = cell.predict(&fluid_of(&mixed));
    let fluid_drop = f_mixed[3].throughput_bps < f_high[3].throughput_bps * 0.95;

    assert!(des_drop, "DES did not show the rate anomaly");
    assert!(fluid_drop, "fluid model did not show the rate anomaly");
}
