//! Property-based tests for the simulators' physical invariants.

use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet, Protocol};
use exbox_sim::event::EventQueue;
use exbox_sim::fluid::{maxmin_allocate, FluidFlow, FluidWifi};
use exbox_sim::lte::{run_lte, LteConfig, LteUe, OfferedLteFlow};
use exbox_sim::phy::{lte_cqi_from_snr, wifi_phy_rate_bps, SnrLevel};
use exbox_sim::wifi::{run_wifi, OfferedFlow, WifiClient, WifiConfig};
use proptest::prelude::*;

fn cbr_packets(key: FlowKey, n: usize, size: u32, gap_us: u64) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new(
                Instant::from_micros(i as u64 * gap_us),
                size,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Causality: nothing is delivered before it was offered, and
    /// per-flow deliveries respect FIFO order (the AP queue is FIFO).
    #[test]
    fn wifi_delivery_causality(
        n in 10usize..300,
        size in 100u32..1500,
        gap_us in 100u64..5_000,
        snr in 10.0f64..55.0,
    ) {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let flows = vec![OfferedFlow {
            key,
            class: AppClass::Streaming,
            client: 0,
            packets: cbr_packets(key, n, size, gap_us),
        }];
        let clients = vec![WifiClient::at_snr(snr)];
        let out = run_wifi(&WifiConfig::default(), &clients, &flows);
        let mut last = Instant::ZERO;
        for p in &out[0].packets {
            if let Some(at) = p.delivered {
                prop_assert!(at >= p.offered, "delivered before offered");
                prop_assert!(at >= last, "per-flow FIFO violated");
                last = at;
            }
        }
        // Conservation: delivered count <= offered count.
        prop_assert!(out[0].delivered_downlink() <= n);
    }

    /// Goodput never exceeds the client's PHY rate.
    #[test]
    fn wifi_goodput_below_phy_rate(
        snr in 10.0f64..55.0,
        rate_mbps in 1u64..60,
    ) {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let gap = Duration::transmission(1400, rate_mbps * 1_000_000);
        let n = (2.0 / gap.as_secs_f64()) as usize + 1;
        let flows = vec![OfferedFlow {
            key,
            class: AppClass::Streaming,
            client: 0,
            packets: (0..n)
                .map(|i| {
                    Packet::new(Instant::ZERO + gap * i as u64, 1400, key, Direction::Downlink, i as u64)
                })
                .collect(),
        }];
        let clients = vec![WifiClient::at_snr(snr)];
        let out = run_wifi(&WifiConfig::default(), &clients, &flows);
        let q = out[0].downlink_qos();
        prop_assert!(
            q.throughput_bps <= wifi_phy_rate_bps(snr) * 1.01,
            "goodput {} above PHY {}",
            q.throughput_bps,
            wifi_phy_rate_bps(snr)
        );
    }

    /// LTE conservation and causality.
    #[test]
    fn lte_delivery_causality(
        n in 10usize..300,
        size in 100u32..1500,
        gap_us in 100u64..5_000,
        snr in 5.0f64..55.0,
    ) {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Udp);
        let flows = vec![OfferedLteFlow {
            key,
            class: AppClass::Conferencing,
            ue: 0,
            packets: cbr_packets(key, n, size, gap_us),
        }];
        let ues = vec![LteUe { snr_db: snr }];
        let out = run_lte(&LteConfig::default(), &ues, &flows);
        for p in &out[0].packets {
            if let Some(at) = p.delivered {
                prop_assert!(at >= p.offered);
            }
        }
        prop_assert!(out[0].delivered_downlink() <= n);
    }

    /// Max-min allocation: never exceeds any demand, never exceeds
    /// capacity, and is monotone in capacity.
    #[test]
    fn maxmin_properties(
        demands in prop::collection::vec(0.0f64..10.0, 1..20),
        cap1 in 0.0f64..20.0,
        extra in 0.0f64..10.0,
    ) {
        let a1 = maxmin_allocate(&demands, cap1);
        let a2 = maxmin_allocate(&demands, cap1 + extra);
        let total1: f64 = a1.iter().sum();
        prop_assert!(total1 <= cap1 + 1e-9);
        for (i, &v) in a1.iter().enumerate() {
            prop_assert!(v <= demands[i] + 1e-9, "alloc above demand");
            prop_assert!(v >= 0.0);
            // Monotone in capacity.
            prop_assert!(a2[i] + 1e-9 >= v, "allocation shrank with more capacity");
        }
    }

    /// Fluid WiFi: throughput never exceeds offered rate; loss and
    /// throughput are consistent.
    #[test]
    fn fluid_wifi_consistency(
        rates in prop::collection::vec(100_000.0f64..10_000_000.0, 1..30),
    ) {
        let flows: Vec<FluidFlow> = rates
            .iter()
            .map(|&r| FluidFlow::new(AppClass::Streaming, SnrLevel::High, r, 1400))
            .collect();
        let qos = FluidWifi::default().predict(&flows);
        for (f, q) in flows.iter().zip(&qos) {
            prop_assert!(q.throughput_bps <= f.offered_bps + 1e-6);
            prop_assert!((0.0..=1.0).contains(&q.loss_ratio));
            let reconstructed = f.offered_bps * (1.0 - q.loss_ratio);
            prop_assert!((reconstructed - q.throughput_bps).abs() < 1.0);
            prop_assert!(q.burst_bps + 1e-6 >= q.throughput_bps, "burst below steady rate");
        }
    }

    /// PHY tables are monotone in SNR.
    #[test]
    fn phy_monotone(s1 in -5.0f64..60.0, s2 in -5.0f64..60.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(wifi_phy_rate_bps(lo) <= wifi_phy_rate_bps(hi));
        prop_assert!(lte_cqi_from_snr(lo) <= lte_cqi_from_snr(hi));
    }

    /// The event queue is a stable priority queue.
    #[test]
    fn event_queue_stable_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Instant::from_micros(t), i);
        }
        let mut last_time = Instant::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, seq)) = q.next() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "tie not broken by insertion order");
                }
            }
            last_time = t;
            last_seq_at_time = Some(seq);
        }
    }
}
