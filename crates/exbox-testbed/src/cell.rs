//! Run a traffic matrix on a cell and extract ground truth.
//!
//! This is the Rust analogue of the paper's ground-truth procedure
//! (§5.2–5.3): "The controller takes the traffic matrix … as input
//! and launches corresponding number of apps … For every traffic
//! matrix, we record ground truth QoE of each application running on
//! each UE. If the QoE falls beneath a certain threshold … we deem
//! that particular flow to be inadmissible in that traffic matrix."
//!
//! Two fidelity tiers:
//!
//! * **DES** — packet-level WiFi/LTE simulation with the real traffic
//!   generators; used for the testbed-scale figures.
//! * **Fluid** — flow-level analytic prediction with optional
//!   per-occurrence QoS jitter (re-running the same matrix on a real
//!   testbed never yields exactly the same QoE, and the paper's
//!   freshness rule exists precisely because labels flap near the
//!   boundary); used for the scale-up figures.

use std::collections::HashMap;

use exbox_core::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use exbox_core::qoe::QoeEstimator;
use exbox_ml::Label;
use exbox_net::{AppClass, Duration, FlowKey, Instant, Protocol, QosSample};
use exbox_sim::appqoe::{
    conferencing_psnr_db, median_page_load_time, startup_delay, CONFERENCING_PSNR_THRESHOLD_DB,
    STREAMING_STARTUP_THRESHOLD, WEB_PLT_THRESHOLD,
};
use exbox_sim::fluid::{qoe as fluid_qoe, FluidFlow, FluidLte, FluidWifi};
use exbox_sim::lte::{run_lte, LteConfig, LteUe, OfferedLteFlow};
use exbox_sim::phy::SnrLevel as PhySnr;
use exbox_sim::wifi::{run_wifi, OfferedFlow, WifiClient, WifiConfig};
use exbox_traffic::dist::Rng;
use exbox_traffic::{ConferencingModel, StreamingModel, TrafficModel, WebModel};

/// Declared per-flow demand used by the RateBased baseline, bits/s.
pub fn nominal_demand_bps(class: AppClass) -> f64 {
    match class {
        AppClass::Web => WebModel::default().nominal_rate_bps(),
        AppClass::Streaming => StreamingModel::default().nominal_rate_bps(),
        AppClass::Conferencing => ConferencingModel::default().nominal_rate_bps(),
    }
}

/// The set of application models a cell's flows are generated from.
#[derive(Debug, Clone, Default)]
pub struct AppModelSet {
    /// Web-browsing model.
    pub web: WebModel,
    /// Video-streaming model.
    pub streaming: StreamingModel,
    /// Video-conferencing model.
    pub conferencing: ConferencingModel,
}

impl AppModelSet {
    /// Profile calibrated to the paper's physical testbed. Two
    /// anchors:
    ///
    /// * Fig. 3 — four simultaneous HD streams fit a ≈20 Mbps laptop
    ///   AP with ≈2–3 s startup delays: the default app rates
    ///   reproduce this once the cell is capped at the laptop's
    ///   measured rate (see `wifi_testbed_labeler` in `exbox-bench`).
    /// * Server pacing — real origin servers are TCP-clocked to the
    ///   path, so download bursts arrive near path rate rather than
    ///   at CDN line rate; the burst rate is capped at 15 Mbps to
    ///   keep shared gateway FIFOs from bloating unrealistically.
    pub fn testbed() -> Self {
        AppModelSet {
            web: WebModel {
                burst_rate_bps: 15_000_000.0,
                ..WebModel::default()
            },
            streaming: StreamingModel {
                burst_rate_bps: 15_000_000.0,
                ..StreamingModel::default()
            },
            conferencing: ConferencingModel::default(),
        }
    }
}

/// Which cell model labels matrices.
#[derive(Debug, Clone)]
pub enum CellModel {
    /// Packet-level 802.11 DES.
    WifiDes {
        /// MAC/PHY parameters.
        cfg: WifiConfig,
        /// How long each matrix runs (paper §6.4 uses 16 s).
        duration: Duration,
        /// Application traffic models.
        models: AppModelSet,
    },
    /// Packet-level LTE DES.
    LteDes {
        /// Scheduler parameters.
        cfg: LteConfig,
        /// Run length per matrix.
        duration: Duration,
        /// Application traffic models.
        models: AppModelSet,
    },
    /// Analytic WiFi cell with per-occurrence QoS jitter.
    WifiFluid {
        /// Cell parameters.
        cfg: FluidWifi,
        /// Relative throughput jitter applied per labelling call.
        label_noise: f64,
        /// Per-class offered rates (bits/s, [`AppClass::index`]
        /// order). The scale-up studies replay recorded traces whose
        /// average rates sit well below the live-app defaults.
        demands: [f64; 3],
    },
    /// Analytic LTE cell with per-occurrence QoS jitter.
    LteFluid {
        /// Cell parameters.
        cfg: FluidLte,
        /// Relative throughput jitter applied per labelling call.
        label_noise: f64,
        /// Per-class offered rates (see `WifiFluid::demands`).
        demands: [f64; 3],
    },
}

/// Result of running one matrix.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Ground-truth label: all flows' app-level QoE acceptable.
    pub truth: Label,
    /// Network-side QoS per flow (what the gateway measures).
    pub per_flow_qos: Vec<(FlowKind, QosSample)>,
    /// Per-class acceptability (true = every flow of that class OK),
    /// for the per-application accuracy of Fig. 9.
    pub class_ok: [bool; AppClass::COUNT],
}

impl MatrixOutcome {
    /// Network-side estimated label via the fitted IQX models — the
    /// `Y` ExBox actually trains on in the simulation studies.
    pub fn estimated_label(&self, estimator: &QoeEstimator) -> Label {
        let ok = self
            .per_flow_qos
            .iter()
            .all(|(kind, qos)| estimator.acceptable(kind.class, qos));
        if ok {
            Label::Pos
        } else {
            Label::Neg
        }
    }
}

/// Labels traffic matrices on a configured cell, memoising DES runs.
#[derive(Debug)]
pub struct CellLabeler {
    model: CellModel,
    seed: u64,
    cache: HashMap<TrafficMatrix, MatrixOutcome>,
    occurrence: u64,
}

impl CellLabeler {
    /// Create a labeler.
    pub fn new(model: CellModel, seed: u64) -> Self {
        CellLabeler {
            model,
            seed,
            cache: HashMap::new(),
            occurrence: 0,
        }
    }

    /// Label one matrix. DES outcomes are memoised per matrix; fluid
    /// outcomes are recomputed with fresh jitter each call.
    pub fn label(&mut self, matrix: &TrafficMatrix) -> MatrixOutcome {
        let (out, wall_ns) = exbox_obs::time_ns(|| self.label_uninstrumented(matrix));
        let reg = exbox_obs::global();
        reg.counter("testbed.labels").inc();
        reg.histogram("testbed.label_wall_ns", &exbox_obs::buckets::latency_ns())
            .record(wall_ns);
        out
    }

    fn label_uninstrumented(&mut self, matrix: &TrafficMatrix) -> MatrixOutcome {
        self.occurrence += 1;
        match &self.model {
            CellModel::WifiDes {
                cfg,
                duration,
                models,
            } => {
                if let Some(hit) = self.cache.get(matrix) {
                    exbox_obs::global()
                        .counter("testbed.label_cache_hits")
                        .inc();
                    return hit.clone();
                }
                let out = run_wifi_matrix(cfg, *duration, models, matrix, self.seed);
                self.cache.insert(*matrix, out.clone());
                out
            }
            CellModel::LteDes {
                cfg,
                duration,
                models,
            } => {
                if let Some(hit) = self.cache.get(matrix) {
                    exbox_obs::global()
                        .counter("testbed.label_cache_hits")
                        .inc();
                    return hit.clone();
                }
                let out = run_lte_matrix(cfg, *duration, models, matrix, self.seed);
                self.cache.insert(*matrix, out.clone());
                out
            }
            CellModel::WifiFluid {
                cfg,
                label_noise,
                demands,
            } => fluid_wifi_matrix(
                cfg,
                *label_noise,
                demands,
                matrix,
                self.seed ^ self.occurrence,
            ),
            CellModel::LteFluid {
                cfg,
                label_noise,
                demands,
            } => fluid_lte_matrix(
                cfg,
                *label_noise,
                demands,
                matrix,
                self.seed ^ self.occurrence,
            ),
        }
    }

    /// Reconfigure the cell mid-experiment (the Fig. 11 throttling
    /// step). Clears the memoisation cache: the world changed.
    pub fn reconfigure(&mut self, model: CellModel) {
        self.model = model;
        self.cache.clear();
    }
}

fn to_phy(snr: SnrLevel) -> PhySnr {
    match snr {
        SnrLevel::Low => PhySnr::Low,
        SnrLevel::High => PhySnr::High,
    }
}

/// Expand a matrix into per-flow offered traffic (shared by both DES
/// paths): one client per flow, staggered starts.
struct ExpandedFlow {
    kind: FlowKind,
    key: FlowKey,
    snr_db: f64,
    packets: Vec<exbox_net::Packet>,
}

fn expand_flows(
    matrix: &TrafficMatrix,
    duration: Duration,
    models: &AppModelSet,
    seed: u64,
) -> Vec<ExpandedFlow> {
    let mut rng = Rng::new(seed).derive(0xCE11);
    let mut out = Vec::new();
    let mut id = 0u32;
    for (kind, count) in matrix.iter_kinds() {
        for _ in 0..count {
            id += 1;
            let key = FlowKey::synthetic(id, id, kind.class.index() as u8 + 1, Protocol::Tcp);
            // Flows joined the cell at different moments of the
            // preceding interval; a shared start would overstate how
            // much their startup bursts overlap.
            let start = Instant::from_millis(rng.index(4_000) as u64);
            let fseed = seed ^ (id as u64) << 16;
            let packets = match kind.class {
                AppClass::Web => models.web.generate(key, start, duration, fseed),
                AppClass::Streaming => models.streaming.generate(key, start, duration, fseed),
                AppClass::Conferencing => models.conferencing.generate(key, start, duration, fseed),
            };
            out.push(ExpandedFlow {
                kind,
                key,
                snr_db: to_phy(kind.snr).nominal_snr_db(),
                packets,
            });
        }
    }
    out
}

/// Per-flow app-level acceptability from a DES outcome.
fn flow_acceptable(outcome: &exbox_sim::FlowOutcome, models: &AppModelSet) -> bool {
    match outcome.class {
        AppClass::Web => match median_page_load_time(outcome) {
            Some(plt) => plt <= WEB_PLT_THRESHOLD,
            None => false,
        },
        AppClass::Streaming => {
            let startup = models.streaming.startup_bytes();
            match startup_delay(outcome, startup) {
                Some(d) => d <= STREAMING_STARTUP_THRESHOLD,
                None => false,
            }
        }
        AppClass::Conferencing => {
            conferencing_psnr_db(outcome, Duration::from_millis(400))
                >= CONFERENCING_PSNR_THRESHOLD_DB
        }
    }
}

fn outcomes_to_matrix_outcome(
    kinds: Vec<FlowKind>,
    outcomes: Vec<exbox_sim::FlowOutcome>,
    models: &AppModelSet,
) -> MatrixOutcome {
    let mut all_ok = true;
    let mut class_ok = [true; AppClass::COUNT];
    let mut per_flow_qos = Vec::with_capacity(outcomes.len());
    for (kind, out) in kinds.iter().zip(&outcomes) {
        let ok = flow_acceptable(out, models);
        if !ok {
            all_ok = false;
            class_ok[kind.class.index()] = false;
        }
        per_flow_qos.push((*kind, out.downlink_qos()));
    }
    MatrixOutcome {
        truth: if all_ok { Label::Pos } else { Label::Neg },
        per_flow_qos,
        class_ok,
    }
}

fn run_wifi_matrix(
    cfg: &WifiConfig,
    duration: Duration,
    models: &AppModelSet,
    matrix: &TrafficMatrix,
    seed: u64,
) -> MatrixOutcome {
    let flows = expand_flows(matrix, duration, models, seed);
    if flows.is_empty() {
        return MatrixOutcome {
            truth: Label::Pos,
            per_flow_qos: Vec::new(),
            class_ok: [true; AppClass::COUNT],
        };
    }
    let clients: Vec<WifiClient> = flows.iter().map(|f| WifiClient::at_snr(f.snr_db)).collect();
    let offered: Vec<OfferedFlow> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| OfferedFlow {
            key: f.key,
            class: f.kind.class,
            client: i,
            packets: f.packets.clone(),
        })
        .collect();
    let outcomes = run_wifi(cfg, &clients, &offered);
    outcomes_to_matrix_outcome(flows.iter().map(|f| f.kind).collect(), outcomes, models)
}

fn run_lte_matrix(
    cfg: &LteConfig,
    duration: Duration,
    models: &AppModelSet,
    matrix: &TrafficMatrix,
    seed: u64,
) -> MatrixOutcome {
    let flows = expand_flows(matrix, duration, models, seed);
    if flows.is_empty() {
        return MatrixOutcome {
            truth: Label::Pos,
            per_flow_qos: Vec::new(),
            class_ok: [true; AppClass::COUNT],
        };
    }
    let ues: Vec<LteUe> = flows.iter().map(|f| LteUe { snr_db: f.snr_db }).collect();
    let offered: Vec<OfferedLteFlow> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| OfferedLteFlow {
            key: f.key,
            class: f.kind.class,
            ue: i,
            packets: f.packets.clone(),
        })
        .collect();
    let outcomes = run_lte(cfg, &ues, &offered);
    outcomes_to_matrix_outcome(flows.iter().map(|f| f.kind).collect(), outcomes, models)
}

/// Shared fluid labelling: predict QoS, jitter it, derive app QoE.
fn fluid_label(
    kinds: &[FlowKind],
    qos: Vec<exbox_sim::FluidQos>,
    noise: f64,
    seed: u64,
) -> MatrixOutcome {
    let mut rng = Rng::new(seed).derive(0xF1D);
    // Run-to-run variation on a real testbed is dominated by
    // cell-wide channel conditions, so one shared jitter scales every
    // flow, with a smaller independent per-flow component on top.
    let cell_jitter = if noise > 0.0 {
        1.0 + rng.uniform_range(-noise, noise)
    } else {
        1.0
    };
    let mut all_ok = true;
    let mut class_ok = [true; AppClass::COUNT];
    let mut per_flow_qos = Vec::with_capacity(kinds.len());
    for (kind, mut q) in kinds.iter().zip(qos) {
        if noise > 0.0 {
            let jitter = cell_jitter * (1.0 + rng.uniform_range(-noise / 4.0, noise / 4.0));
            q.throughput_bps *= jitter;
            q.burst_bps *= jitter;
            q.delay = Duration::from_secs_f64(q.delay.as_secs_f64() / jitter.max(0.1));
        }
        let ok = match kind.class {
            AppClass::Web => {
                let page = WebModel::default().page_bytes_mean as u64;
                match fluid_qoe::page_load_time(&q, page) {
                    Some(plt) => plt <= WEB_PLT_THRESHOLD,
                    None => false,
                }
            }
            AppClass::Streaming => {
                let startup = StreamingModel::default().startup_bytes();
                match fluid_qoe::startup_delay(&q, startup) {
                    Some(d) => d <= STREAMING_STARTUP_THRESHOLD,
                    None => false,
                }
            }
            AppClass::Conferencing => {
                fluid_qoe::conferencing_psnr_db(&q, Duration::from_millis(400))
                    >= CONFERENCING_PSNR_THRESHOLD_DB
            }
        };
        if !ok {
            all_ok = false;
            class_ok[kind.class.index()] = false;
        }
        per_flow_qos.push((*kind, q.as_qos_sample()));
    }
    MatrixOutcome {
        truth: if all_ok { Label::Pos } else { Label::Neg },
        per_flow_qos,
        class_ok,
    }
}

/// Default fluid demands: the live-app nominal rates.
pub fn default_fluid_demands() -> [f64; 3] {
    [
        nominal_demand_bps(AppClass::Web),
        nominal_demand_bps(AppClass::Streaming),
        nominal_demand_bps(AppClass::Conferencing),
    ]
}

/// Trace-replay fluid demands for the §6 scale-up studies: average
/// rates of the paper's recorded BBC/YouTube/Skype traces, sized so
/// the simulated cell supports ≈25 streaming or ≈45 conferencing
/// flows — the capacity region the paper's Fig. 2 shows.
pub fn scaleup_fluid_demands() -> [f64; 3] {
    [400_000.0, 1_200_000.0, 600_000.0]
}

/// Typical on-air packet size per class: full MTU for streaming
/// chunks, mixed small/large objects for web, codec frames for
/// conferencing. Smaller packets pay proportionally more 802.11
/// per-transmission overhead per bit — the airtime nonlinearity that
/// a pure rate-based controller cannot see.
fn class_pkt_size(class: AppClass) -> u32 {
    match class {
        AppClass::Web => 900,
        AppClass::Streaming => 1400,
        AppClass::Conferencing => 1000,
    }
}

fn fluid_flows(matrix: &TrafficMatrix, demands: &[f64; 3]) -> (Vec<FlowKind>, Vec<FluidFlow>) {
    let mut kinds = Vec::new();
    let mut flows = Vec::new();
    for (kind, count) in matrix.iter_kinds() {
        for _ in 0..count {
            kinds.push(kind);
            flows.push(FluidFlow::new(
                kind.class,
                to_phy(kind.snr),
                demands[kind.class.index()],
                class_pkt_size(kind.class),
            ));
        }
    }
    (kinds, flows)
}

fn fluid_wifi_matrix(
    cfg: &FluidWifi,
    noise: f64,
    demands: &[f64; 3],
    matrix: &TrafficMatrix,
    seed: u64,
) -> MatrixOutcome {
    let (kinds, flows) = fluid_flows(matrix, demands);
    if flows.is_empty() {
        return MatrixOutcome {
            truth: Label::Pos,
            per_flow_qos: Vec::new(),
            class_ok: [true; AppClass::COUNT],
        };
    }
    fluid_label(&kinds, cfg.predict(&flows), noise, seed)
}

fn fluid_lte_matrix(
    cfg: &FluidLte,
    noise: f64,
    demands: &[f64; 3],
    matrix: &TrafficMatrix,
    seed: u64,
) -> MatrixOutcome {
    let (kinds, flows) = fluid_flows(matrix, demands);
    if flows.is_empty() {
        return MatrixOutcome {
            truth: Label::Pos,
            per_flow_qos: Vec::new(),
            class_ok: [true; AppClass::COUNT],
        };
    }
    fluid_label(&kinds, cfg.predict(&flows), noise, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(web: u32, stream: u32, conf: u32, snr: SnrLevel) -> TrafficMatrix {
        let mut m = TrafficMatrix::empty();
        for _ in 0..web {
            m.add(FlowKind::new(AppClass::Web, snr));
        }
        for _ in 0..stream {
            m.add(FlowKind::new(AppClass::Streaming, snr));
        }
        for _ in 0..conf {
            m.add(FlowKind::new(AppClass::Conferencing, snr));
        }
        m
    }

    fn wifi_des() -> CellLabeler {
        CellLabeler::new(
            CellModel::WifiDes {
                cfg: WifiConfig::default(),
                duration: Duration::from_secs(12),
                models: AppModelSet::default(),
            },
            7,
        )
    }

    fn wifi_fluid() -> CellLabeler {
        CellLabeler::new(
            CellModel::WifiFluid {
                cfg: FluidWifi::default(),
                label_noise: 0.0,
                demands: default_fluid_demands(),
            },
            7,
        )
    }

    #[test]
    fn empty_matrix_is_trivially_achievable() {
        let mut lab = wifi_fluid();
        let out = lab.label(&TrafficMatrix::empty());
        assert_eq!(out.truth, Label::Pos);
        assert!(out.per_flow_qos.is_empty());
    }

    #[test]
    fn light_fluid_matrix_is_achievable() {
        let mut lab = wifi_fluid();
        let out = lab.label(&matrix(1, 1, 1, SnrLevel::High));
        assert_eq!(out.truth, Label::Pos, "3 light flows must fit");
        assert_eq!(out.per_flow_qos.len(), 3);
        assert!(out.class_ok.iter().all(|&v| v));
    }

    #[test]
    fn heavy_fluid_matrix_is_unachievable() {
        let mut lab = wifi_fluid();
        let out = lab.label(&matrix(10, 15, 10, SnrLevel::High));
        assert_eq!(out.truth, Label::Neg, "35 flows cannot fit a WiFi cell");
    }

    #[test]
    fn fluid_capacity_is_monotone_along_a_ray() {
        // Walking outward along a fixed mix, once the label flips to
        // Neg it must stay Neg (the downward-closure property).
        let mut lab = wifi_fluid();
        let mut seen_neg = false;
        for n in 1..20 {
            let out = lab.label(&matrix(n, n, n, SnrLevel::High));
            if seen_neg {
                assert_eq!(out.truth, Label::Neg, "non-monotone at n={n}");
            }
            if out.truth == Label::Neg {
                seen_neg = true;
            }
        }
        assert!(seen_neg, "never saturated");
    }

    #[test]
    fn low_snr_shrinks_the_fluid_region() {
        let mut lab = wifi_fluid();
        // Find the largest achievable all-high streaming count...
        let mut cap_high = 0;
        let mut cap_low = 0;
        for n in 1..=25 {
            if lab.label(&matrix(0, n, 0, SnrLevel::High)).truth == Label::Pos {
                cap_high = n;
            }
            if lab.label(&matrix(0, n, 0, SnrLevel::Low)).truth == Label::Pos {
                cap_low = n;
            }
        }
        assert!(
            cap_low < cap_high,
            "low-SNR capacity {cap_low} !< high-SNR capacity {cap_high}"
        );
    }

    #[test]
    fn des_light_matrix_is_achievable() {
        let mut lab = wifi_des();
        let out = lab.label(&matrix(1, 1, 1, SnrLevel::High));
        assert_eq!(out.truth, Label::Pos);
    }

    #[test]
    fn des_overload_matrix_is_unachievable() {
        let mut lab = wifi_des();
        let out = lab.label(&matrix(2, 9, 2, SnrLevel::High));
        assert_eq!(out.truth, Label::Neg, "9 HD streams exceed one AP");
    }

    #[test]
    fn des_results_are_memoised() {
        let mut lab = wifi_des();
        let m = matrix(1, 1, 0, SnrLevel::High);
        let a = lab.label(&m);
        let b = lab.label(&m);
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.per_flow_qos.len(), b.per_flow_qos.len());
    }

    #[test]
    fn fluid_noise_flaps_labels_near_boundary() {
        let mut lab = CellLabeler::new(
            CellModel::WifiFluid {
                cfg: FluidWifi::default(),
                label_noise: 0.3,
                demands: default_fluid_demands(),
            },
            7,
        );
        // Find a boundary point first with a clean labeler.
        let mut clean = wifi_fluid();
        let mut boundary = None;
        for n in 1..=25 {
            if clean.label(&matrix(0, n, 0, SnrLevel::High)).truth == Label::Neg {
                boundary = Some(n);
                break;
            }
        }
        let n = boundary.expect("boundary exists");
        let m = matrix(0, n, 0, SnrLevel::High);
        let labels: Vec<Label> = (0..40).map(|_| lab.label(&m).truth).collect();
        let pos = labels.iter().filter(|l| l.is_pos()).count();
        assert!(
            pos > 0 && pos < 40,
            "noisy labels at the boundary should flap, got {pos}/40 Pos"
        );
    }

    #[test]
    fn estimated_label_uses_estimator() {
        use exbox_core::qoe::{paper_directions, train_estimator, QoeEstimator};
        let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
            (0..20)
                .map(|i| {
                    let q = i as f64 / 19.0;
                    (q, a + b * (-g * q).exp())
                })
                .collect()
        };
        let est = train_estimator(
            &[mk(1.0, 11.0, 4.0), mk(2.0, 20.0, 4.0), mk(42.0, -30.0, 1.2)],
            QoeEstimator::paper_thresholds(),
            paper_directions(),
            exbox_core::qoe::QosScale::new(1e3, 1e8),
        );
        let mut lab = wifi_fluid();
        let light = lab.label(&matrix(1, 1, 1, SnrLevel::High));
        let heavy = lab.label(&matrix(10, 15, 10, SnrLevel::High));
        assert_eq!(light.estimated_label(&est), Label::Pos);
        assert_eq!(heavy.estimated_label(&est), Label::Neg);
    }

    #[test]
    fn reconfigure_clears_cache() {
        let mut lab = wifi_fluid();
        let m = matrix(1, 1, 1, SnrLevel::High);
        assert_eq!(lab.label(&m).truth, Label::Pos);
        // Throttle hard: same matrix becomes unachievable.
        lab.reconfigure(CellModel::WifiFluid {
            cfg: FluidWifi {
                efficiency: 0.05,
                ..FluidWifi::default()
            },
            label_noise: 0.0,
            demands: default_fluid_demands(),
        });
        assert_eq!(lab.label(&m).truth, Label::Neg);
    }

    #[test]
    fn nominal_demands_are_positive() {
        for c in AppClass::ALL {
            assert!(nominal_demand_bps(c) > 0.0);
        }
    }
}
