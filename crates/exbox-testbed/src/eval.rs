//! Trace-based online evaluation (paper §5.3).
//!
//! Replays labelled arrival samples through an admission controller:
//! the controller bootstraps on the first arrivals (admitting
//! everything, learning), then every subsequent arrival is a *test* —
//! its decision is scored against ground truth — while admitted flows
//! keep feeding observations (the paper: "The model then learns from
//! the flows admitted in that batch"). The output is the
//! metric-vs-samples-fed-online series the paper plots in
//! Figs. 7, 8, 10, 11, 13 and 14, plus the per-application confusion
//! of Fig. 9.

use exbox_core::baselines::{AdmissionController, Decision, FlowRequest};
use exbox_ml::{BinaryMetrics, ConfusionMatrix};
use exbox_net::AppClass;

use crate::cell::nominal_demand_bps;
use crate::samples::Sample;

/// One point on the learning curve.
#[derive(Debug, Clone, Copy)]
pub struct EvalPoint {
    /// Samples fed online (scored decisions) so far.
    pub fed: usize,
    /// Metrics over the window since the previous point.
    pub window: BinaryMetrics,
    /// Metrics over everything scored so far.
    pub cumulative: BinaryMetrics,
}

/// Full evaluation result.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Learning-curve points, one per `eval_every` scored samples.
    pub points: Vec<EvalPoint>,
    /// Overall confusion across the scored phase.
    pub confusion: ConfusionMatrix,
    /// Per-application-class confusion (Fig. 9's accuracy source).
    pub per_class: [ConfusionMatrix; AppClass::COUNT],
    /// Samples consumed by the bootstrap phase (not scored).
    pub bootstrap_used: usize,
}

impl EvalReport {
    /// Overall metrics.
    pub fn metrics(&self) -> BinaryMetrics {
        self.confusion.metrics()
    }

    /// Accuracy for one application class.
    pub fn class_accuracy(&self, class: AppClass) -> f64 {
        self.per_class[class.index()].metrics().accuracy
    }
}

/// Replay `samples` through `controller`, scoring post-bootstrap
/// decisions and snapshotting metrics every `eval_every` scored
/// samples.
///
/// Decision protocol per sample:
/// 1. the controller's load state is synced to the pre-arrival matrix
///    (flows departed between samples),
/// 2. bootstrapping controllers admit unscored and observe,
/// 3. online controllers decide; the decision is scored against
///    ground truth; **admitted** flows feed an observation with the
///    *observed* label (rejected flows yield no feedback — the
///    exploration cost of admission control).
///
/// # Panics
/// Panics if `eval_every == 0`.
pub fn evaluate_online(
    controller: &mut dyn AdmissionController,
    samples: &[Sample],
    eval_every: usize,
) -> EvalReport {
    evaluate_online_with_demand(controller, samples, eval_every, &|class| {
        nominal_demand_bps(class)
    })
}

/// [`evaluate_online`] with an explicit per-class declared-demand
/// function (the scale-up studies replay traces whose rates differ
/// from the live-app nominals).
///
/// # Panics
/// Panics if `eval_every == 0`.
pub fn evaluate_online_with_demand(
    controller: &mut dyn AdmissionController,
    samples: &[Sample],
    eval_every: usize,
    demand: &dyn Fn(AppClass) -> f64,
) -> EvalReport {
    assert!(eval_every > 0, "eval_every must be positive");

    let mut confusion = ConfusionMatrix::new();
    let mut window = ConfusionMatrix::new();
    let mut per_class: [ConfusionMatrix; AppClass::COUNT] = Default::default();
    let mut points = Vec::new();
    let mut fed = 0usize;
    let mut bootstrap_used = 0usize;

    for s in samples {
        let prev = s.matrix.with_departure(s.kind);
        controller.sync_load(&prev, &demand);
        let req = FlowRequest {
            kind: s.kind,
            demand_bps: demand(s.kind.class),
            resulting_matrix: s.matrix,
        };

        if controller.is_bootstrapping() {
            bootstrap_used += 1;
            controller.on_admitted(&req);
            controller.on_observation(s.matrix, s.observed);
            continue;
        }

        let decision = controller.decide(&req);
        confusion.record(decision.as_label(), s.truth);
        window.record(decision.as_label(), s.truth);
        per_class[s.kind.class.index()].record(decision.as_label(), s.truth);
        fed += 1;

        if decision == Decision::Admit {
            controller.on_admitted(&req);
            controller.on_observation(s.matrix, s.observed);
        }

        if fed.is_multiple_of(eval_every) {
            points.push(EvalPoint {
                fed,
                window: window.metrics(),
                cumulative: confusion.metrics(),
            });
            window = ConfusionMatrix::new();
        }
    }
    // Flush a trailing partial window.
    if window.total() > 0 {
        points.push(EvalPoint {
            fed,
            window: window.metrics(),
            cumulative: confusion.metrics(),
        });
    }

    EvalReport {
        points,
        confusion,
        per_class,
        bootstrap_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellLabeler, CellModel};
    use crate::samples::{build_samples, SnrPolicy};
    use exbox_core::prelude::*;
    use exbox_sim::fluid::FluidWifi;
    use exbox_traffic::{ClassMix, RandomPattern};

    fn labeler() -> CellLabeler {
        CellLabeler::new(
            CellModel::WifiFluid {
                cfg: FluidWifi::default(),
                label_noise: 0.0,
                demands: crate::cell::default_fluid_demands(),
            },
            11,
        )
    }

    fn workload_samples(n: usize, seed: u64) -> Vec<crate::samples::Sample> {
        let mixes = RandomPattern::new(12, 30, seed).matrices(n);
        build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None)
    }

    #[test]
    fn exbox_beats_chance_on_random_workload() {
        let samples = workload_samples(400, 1);
        let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 60,
            ..AdmittanceConfig::default()
        }));
        let report = evaluate_online(&mut exbox, &samples, 50);
        assert!(report.bootstrap_used >= 60);
        let m = report.metrics();
        assert!(m.accuracy > 0.7, "accuracy {}", m.accuracy);
        assert!(m.precision > 0.7, "precision {}", m.precision);
        assert!(!report.points.is_empty());
    }

    #[test]
    fn maxclient_with_wrong_cap_has_poor_accuracy() {
        let samples = workload_samples(400, 2);
        // Cap 10 like the paper: the real fluid-cell region is tighter
        // for streaming-heavy mixes and looser for web-heavy ones.
        let mut mc = MaxClient::new(10);
        let report = evaluate_online(&mut mc, &samples, 50);
        let m = report.metrics();
        // It decides *something* but can't match a multi-dimensional
        // region with a single count.
        assert!(m.accuracy < 0.95);
        assert_eq!(report.bootstrap_used, 0, "baselines have no bootstrap");
    }

    #[test]
    fn exbox_outperforms_baselines_in_precision() {
        let samples = workload_samples(600, 3);
        let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 60,
            ..AdmittanceConfig::default()
        }));
        let mut rb = RateBased::new(25_000_000.0);
        let mut mc = MaxClient::new(10);
        let ex_m = evaluate_online(&mut exbox, &samples, 100).metrics();
        let rb_m = evaluate_online(&mut rb, &samples, 100).metrics();
        let mc_m = evaluate_online(&mut mc, &samples, 100).metrics();
        assert!(
            ex_m.precision >= rb_m.precision - 0.05,
            "ExBox {} vs RateBased {}",
            ex_m.precision,
            rb_m.precision
        );
        assert!(
            ex_m.accuracy > mc_m.accuracy,
            "ExBox {} vs MaxClient {}",
            ex_m.accuracy,
            mc_m.accuracy
        );
    }

    #[test]
    fn eval_points_track_fed_counts() {
        let samples = workload_samples(300, 4);
        let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 50,
            ..AdmittanceConfig::default()
        }));
        let report = evaluate_online(&mut exbox, &samples, 40);
        for w in report.points.windows(2) {
            assert!(w[0].fed < w[1].fed);
        }
        let scored: u64 = report.confusion.total();
        assert_eq!(scored as usize + report.bootstrap_used, samples.len());
    }

    #[test]
    fn per_class_confusion_is_populated() {
        let samples = workload_samples(400, 5);
        let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 50,
            ..AdmittanceConfig::default()
        }));
        let report = evaluate_online(&mut exbox, &samples, 50);
        let total: u64 = report.per_class.iter().map(|c| c.total()).sum();
        assert_eq!(total, report.confusion.total());
        for class in AppClass::ALL {
            let acc = report.class_accuracy(class);
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn empty_sample_list_yields_empty_report() {
        let mut mc = MaxClient::new(5);
        let report = evaluate_online(&mut mc, &[], 10);
        assert!(report.points.is_empty());
        assert_eq!(report.confusion.total(), 0);
    }

    #[test]
    fn single_mix_smoke() {
        let mixes = vec![ClassMix::new(1, 1, 1)];
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        let mut mc = MaxClient::new(5);
        let report = evaluate_online(&mut mc, &samples, 1);
        assert_eq!(report.confusion.total(), 3);
        // All three arrivals fit: perfect accuracy for MaxClient here.
        assert_eq!(report.metrics().accuracy, 1.0);
    }
}
