//! # exbox-testbed — emulated testbeds and the experiment harness
//!
//! The paper evaluates ExBox on a physical testbed (10 Galaxy S6
//! phones against a hostapd laptop AP and an ip.access E-40 eNodeB
//! with OpenEPC, §5.1) and at scale in ns-3 (§6). This crate is the
//! harness that drives the Rust equivalents end to end:
//!
//! * [`cell`] — a unified "run this traffic matrix on a cell and tell
//!   me the QoE ground truth" abstraction over the packet-level DES
//!   (testbed-scale figures) and the fluid models (scale-up figures),
//!   with memoisation so repeated matrices are not re-simulated.
//! * [`training`] — the training-device methodology of §5.3: sweep a
//!   shaped link (`tc`-style rate × latency grid), run each app,
//!   record (QoS, QoE) pairs, and fit the per-class IQX models that
//!   power the QoE Estimator.
//! * [`samples`] — turn a chronological traffic-matrix workload
//!   (Random / LiveLab) into labelled arrival samples
//!   `(kind, matrix, Y_truth, Y_observed)`, with configurable SNR
//!   placement (all-high for §5, random mixed for §6.3).
//! * [`eval`] — the trace-based online evaluation loop: bootstrap,
//!   then decide-score-learn per arrival, producing the
//!   precision/recall/accuracy-vs-samples-fed-online curves of
//!   Figs. 7, 8, 10, 11, 13, 14 and the per-class accuracy of Fig. 9.

pub mod cell;
pub mod eval;
pub mod samples;
pub mod training;

pub use cell::{CellLabeler, CellModel, MatrixOutcome};
pub use eval::{evaluate_online, EvalPoint, EvalReport};
pub use samples::{build_samples, Sample, SnrPolicy};
pub use training::{fit_estimator_from_sweep, run_training_sweep, TrainingSweep};
