//! Build labelled arrival samples from a workload.
//!
//! The evaluation unit is the paper's `(X_m, Y_m)` tuple: a flow
//! arrival against the current traffic matrix, labelled by whether
//! the *resulting* matrix keeps every flow's QoE acceptable. This
//! module walks a chronological [`ClassMix`] sequence (Random or
//! LiveLab), assigns each arriving flow an SNR level, and labels the
//! resulting matrices on a [`CellLabeler`].

use exbox_core::matrix::{FlowKind, SnrLevel, TrafficMatrix};
use exbox_core::qoe::QoeEstimator;
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_traffic::dist::Rng;
use exbox_traffic::ClassMix;

use crate::cell::CellLabeler;

/// How arriving flows get their SNR level.
#[derive(Debug, Clone, Copy)]
pub enum SnrPolicy {
    /// Every client in a high-SNR location (the paper's §5 testbed
    /// runs: "We place all devices in high SNR locations").
    AllHigh,
    /// Each arrival independently low with probability `p_low`
    /// (the §6.3 mixed-SNR scale-up: "we randomly position the client
    /// in a high SNR or a low SNR location").
    RandomMix {
        /// Probability of a low-SNR placement.
        p_low: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// One labelled arrival.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// The arriving flow's (class, SNR-level).
    pub kind: FlowKind,
    /// The traffic matrix *after* the arrival (the `X_m` encoding).
    pub matrix: TrafficMatrix,
    /// Ground-truth label (app-level QoE of all flows).
    pub truth: Label,
    /// The label ExBox observes: measured directly on the testbed, or
    /// estimated network-side via IQX in the simulation studies.
    pub observed: Label,
}

/// Walk a chronological mix sequence into labelled arrival samples.
///
/// * Departures pop the oldest flow of the departing class (FIFO),
///   mirroring session lifetimes.
/// * Each arrival produces one [`Sample`] whose matrix includes it.
/// * `estimator` switches the observed label to the network-side IQX
///   estimate; `None` uses ground truth (the paper's physical-testbed
///   mode, where `Y_m` came from on-device measurement).
pub fn build_samples(
    mixes: &[ClassMix],
    policy: SnrPolicy,
    labeler: &mut CellLabeler,
    estimator: Option<&QoeEstimator>,
) -> Vec<Sample> {
    let mut rng = match policy {
        SnrPolicy::AllHigh => Rng::new(1),
        SnrPolicy::RandomMix { seed, .. } => Rng::new(seed).derive(0x5412),
    };
    let mut assign_snr = move || match policy {
        SnrPolicy::AllHigh => SnrLevel::High,
        SnrPolicy::RandomMix { p_low, .. } => {
            if rng.chance(p_low) {
                SnrLevel::Low
            } else {
                SnrLevel::High
            }
        }
    };

    let mut current = TrafficMatrix::empty();
    // FIFO of live flows per class, remembering their SNR levels.
    let mut live: [std::collections::VecDeque<SnrLevel>; AppClass::COUNT] = Default::default();
    let mut prev = ClassMix::default();
    let mut samples = Vec::new();

    for &mix in mixes {
        for class in AppClass::ALL {
            let (was, now) = (prev.count(class), mix.count(class));
            // Departures first: oldest flows leave.
            for _ in now..was {
                if let Some(snr) = live[class.index()].pop_front() {
                    current.remove(FlowKind::new(class, snr));
                }
            }
            // Arrivals: each produces a sample.
            for _ in was..now {
                let snr = assign_snr();
                let kind = FlowKind::new(class, snr);
                current.add(kind);
                live[class.index()].push_back(snr);
                let outcome = labeler.label(&current);
                let observed = match estimator {
                    Some(est) => outcome.estimated_label(est),
                    None => outcome.truth,
                };
                samples.push(Sample {
                    kind,
                    matrix: current,
                    truth: outcome.truth,
                    observed,
                });
            }
        }
        prev = mix;
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellModel;
    use exbox_sim::fluid::FluidWifi;

    fn labeler() -> CellLabeler {
        CellLabeler::new(
            CellModel::WifiFluid {
                cfg: FluidWifi::default(),
                label_noise: 0.0,
                demands: crate::cell::default_fluid_demands(),
            },
            3,
        )
    }

    #[test]
    fn arrivals_produce_samples_with_running_matrix() {
        let mixes = vec![
            ClassMix::new(1, 0, 0),
            ClassMix::new(1, 1, 0),
            ClassMix::new(2, 1, 1),
        ];
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        // 1 + 1 + 2 arrivals.
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].matrix.total(), 1);
        assert_eq!(samples[3].matrix.total(), 4);
        // AllHigh policy: every kind is high-SNR.
        assert!(samples.iter().all(|s| s.kind.snr == SnrLevel::High));
    }

    #[test]
    fn departures_shrink_matrix() {
        let mixes = vec![
            ClassMix::new(3, 0, 0),
            ClassMix::new(1, 0, 0),
            ClassMix::new(2, 0, 0),
        ];
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        // Arrivals: 3 then (after dropping to 1) 1 more.
        assert_eq!(samples.len(), 4);
        let last = samples.last().expect("non-empty");
        assert_eq!(last.matrix.total(), 2);
    }

    #[test]
    fn light_workload_labels_positive() {
        let mixes = vec![ClassMix::new(1, 1, 1)];
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        assert!(samples.iter().all(|s| s.truth == Label::Pos));
        // Without an estimator, observed == truth.
        assert!(samples.iter().all(|s| s.observed == s.truth));
    }

    #[test]
    fn heavy_workload_labels_negative_eventually() {
        let mixes: Vec<ClassMix> = (1..=30).map(|n| ClassMix::new(0, n, 0)).collect();
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        assert_eq!(samples.len(), 30);
        assert_eq!(samples[0].truth, Label::Pos);
        assert_eq!(samples.last().expect("non-empty").truth, Label::Neg);
    }

    #[test]
    fn random_mix_assigns_both_levels() {
        let mixes: Vec<ClassMix> = (1..=40).map(|n| ClassMix::new(n, 0, 0)).collect();
        let samples = build_samples(
            &mixes,
            SnrPolicy::RandomMix {
                p_low: 0.5,
                seed: 9,
            },
            &mut labeler(),
            None,
        );
        let lows = samples
            .iter()
            .filter(|s| s.kind.snr == SnrLevel::Low)
            .count();
        assert!(lows > 5 && lows < 35, "low count {lows} not mixed");
    }

    #[test]
    fn deterministic_given_seeds() {
        let mixes: Vec<ClassMix> = (1..=10).map(|n| ClassMix::new(n, 0, 0)).collect();
        let a = build_samples(
            &mixes,
            SnrPolicy::RandomMix {
                p_low: 0.3,
                seed: 5,
            },
            &mut labeler(),
            None,
        );
        let b = build_samples(
            &mixes,
            SnrPolicy::RandomMix {
                p_low: 0.3,
                seed: 5,
            },
            &mut labeler(),
            None,
        );
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.truth, y.truth);
        }
    }
}
