//! Training-device sweeps: fitting the IQX models (paper §5.3,
//! Fig. 12).
//!
//! The paper varies the shaped link "from 100 Kbps to 20 Mbps and
//! latency from 10 ms to 250 ms … For each data rate-latency profile
//! we run each of the three applications 10 times on a single
//! client", recording QoE on the device and QoS at the controller,
//! then least-squares fits `QoE = α + β·e^(−γ·QoS)` per class.
//!
//! Here the shaped link is [`NetemLink`] (the `tc`/`netem`
//! equivalent), the applications are the real traffic generators, and
//! QoE comes from the same app-level extractors the ground-truth
//! pipeline uses — so the fitted estimator and the ground truth share
//! *metrics* but not *values*, preserving the estimation gap.

use exbox_core::iqx::IqxModel;
use exbox_core::qoe::{paper_directions, ClassQoeModel, QoeEstimator, QosScale};
use exbox_net::shaper::LinkVerdict;
use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, NetemLink, Protocol};
use exbox_sim::appqoe::{conferencing_psnr_db, median_page_load_time, startup_delay};
use exbox_sim::outcome::{FlowOutcome, PacketOutcome};
use exbox_sim::phy::SnrLevel;
use exbox_traffic::{ConferencingModel, StreamingModel, TrafficModel, WebModel};

/// QoE value recorded when a page/video never completes within the
/// run — the "does not even play" ceiling (compare Fig. 3, where
/// unstarted videos are plotted at the top of the axis).
const NEVER_SECS: f64 = 30.0;

/// Result of a full sweep: per-class `(normalized QoS, QoE)` points
/// plus the normalisation reference.
#[derive(Debug, Clone)]
pub struct TrainingSweep {
    /// Points per class, indexed by [`AppClass::index`].
    pub points: [Vec<(f64, f64)>; AppClass::COUNT],
    /// Log-range normalisation fitted from the sweep's worst and best
    /// raw QoS indices.
    pub scale: QosScale,
}

/// Run one app flavour through a shaped link and extract `(raw QoS
/// index, QoE)`.
fn run_profile(class: AppClass, rate_bps: u64, delay: Duration, seed: u64) -> (f64, f64) {
    let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
    let duration = Duration::from_secs(20);
    let packets = match class {
        AppClass::Web => WebModel::default().generate(key, Instant::ZERO, duration, seed),
        AppClass::Streaming => {
            StreamingModel::default().generate(key, Instant::ZERO, duration, seed)
        }
        AppClass::Conferencing => {
            ConferencingModel::default().generate(key, Instant::ZERO, duration, seed)
        }
    };
    // Shaped bottleneck: generous queue, no random loss (losses at
    // the bottleneck emerge from queue overflow).
    let mut link = NetemLink::new(rate_bps, delay, 0.0, 4 << 20, seed | 1);
    let outcomes: Vec<PacketOutcome> = packets
        .iter()
        .map(|p| {
            let delivered = match p.direction {
                Direction::Downlink => match link.offer(p.timestamp, p.size) {
                    LinkVerdict::Deliver(at) => Some(at),
                    _ => None,
                },
                // Uplink requests ride an uncongested reverse path.
                Direction::Uplink => Some(p.timestamp + Duration::from_millis(5)),
            };
            PacketOutcome {
                offered: p.timestamp,
                size: p.size,
                direction: p.direction,
                delivered,
            }
        })
        .collect();
    let flow = FlowOutcome {
        key,
        class,
        snr: SnrLevel::High,
        packets: outcomes,
    };

    let qos = flow.downlink_qos();
    // Delay-like metrics are clamped at the patience ceiling: the
    // instrumented apps time out rather than report a 120 s page load.
    let qoe = match class {
        AppClass::Web => median_page_load_time(&flow)
            .map(|d| d.as_secs_f64().min(NEVER_SECS))
            .unwrap_or(NEVER_SECS),
        AppClass::Streaming => startup_delay(&flow, StreamingModel::default().startup_bytes())
            .map(|d| d.as_secs_f64().min(NEVER_SECS))
            .unwrap_or(NEVER_SECS),
        AppClass::Conferencing => conferencing_psnr_db(&flow, Duration::from_millis(400)),
    };
    (qos.qos_index(), qoe)
}

/// Run the full rate × latency × repetitions sweep.
///
/// # Panics
/// Panics on empty rate/delay grids or zero repetitions.
pub fn run_training_sweep(
    rates_bps: &[u64],
    delays: &[Duration],
    reps: u32,
    seed: u64,
) -> TrainingSweep {
    assert!(!rates_bps.is_empty(), "need at least one rate");
    assert!(!delays.is_empty(), "need at least one delay");
    assert!(reps >= 1, "need at least one repetition");

    let mut raw: [Vec<(f64, f64)>; AppClass::COUNT] = Default::default();
    for (ri, &rate) in rates_bps.iter().enumerate() {
        for (di, &delay) in delays.iter().enumerate() {
            for rep in 0..reps {
                for class in AppClass::ALL {
                    let s = seed
                        ^ ((ri as u64) << 40)
                        ^ ((di as u64) << 24)
                        ^ ((rep as u64) << 8)
                        ^ class.index() as u64;
                    let (qos, qoe) = run_profile(class, rate, delay, s);
                    raw[class.index()].push((qos, qoe));
                }
            }
        }
    }
    // Fit the log-range scale to the sweep's own spread of indices.
    let max_index = raw
        .iter()
        .flatten()
        .map(|&(q, _)| q)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let min_index = raw
        .iter()
        .flatten()
        .map(|&(q, _)| q)
        .filter(|&q| q > 0.0)
        .fold(f64::INFINITY, f64::min)
        .min(max_index / 2.0);
    let scale = QosScale::new(min_index, max_index);
    let points = raw.map(|v| {
        v.into_iter()
            .map(|(q, e)| (scale.normalize(q), e))
            .collect()
    });
    TrainingSweep { points, scale }
}

/// The default grid of the paper: 100 kbps – 20 Mbps × 10 – 250 ms.
pub fn paper_grid() -> (Vec<u64>, Vec<Duration>) {
    let rates = vec![
        100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 12_000_000,
        20_000_000,
    ];
    let delays = vec![
        Duration::from_millis(10),
        Duration::from_millis(50),
        Duration::from_millis(100),
        Duration::from_millis(175),
        Duration::from_millis(250),
    ];
    (rates, delays)
}

/// Fit the per-class IQX models from a sweep and assemble the
/// estimator. Returns the estimator and each class's fit RMSE (the
/// numbers the paper reports under Fig. 12).
pub fn fit_estimator_from_sweep(
    sweep: &TrainingSweep,
    thresholds: [f64; AppClass::COUNT],
) -> (QoeEstimator, [f64; AppClass::COUNT]) {
    let directions = paper_directions();
    let mut rmse = [0.0; AppClass::COUNT];
    let mut models: Vec<ClassQoeModel> = Vec::with_capacity(AppClass::COUNT);
    for class in AppClass::ALL {
        let pts = &sweep.points[class.index()];
        let iqx = IqxModel::fit(pts);
        rmse[class.index()] = iqx.rmse(pts);
        exbox_obs::global()
            .gauge(&format!("qoe.fit_rmse.{}", class.name()))
            .set(rmse[class.index()]);
        models.push(ClassQoeModel {
            iqx,
            threshold: thresholds[class.index()],
            direction: directions[class.index()],
        });
    }
    let models: [ClassQoeModel; AppClass::COUNT] = [models[0], models[1], models[2]];
    (QoeEstimator::new(models, sweep.scale), rmse)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> TrainingSweep {
        run_training_sweep(
            &[250_000, 1_000_000, 4_000_000, 12_000_000],
            &[Duration::from_millis(20), Duration::from_millis(150)],
            2,
            42,
        )
    }

    #[test]
    fn sweep_produces_points_for_every_class() {
        let s = small_sweep();
        for class in AppClass::ALL {
            let pts = &s.points[class.index()];
            assert_eq!(pts.len(), 4 * 2 * 2, "{class}");
            assert!(pts
                .iter()
                .all(|&(q, e)| (0.0..=1.0).contains(&q) && e.is_finite()));
        }
        assert!(s.scale.normalize(1e12) == 1.0);
    }

    #[test]
    fn qoe_improves_with_rate_for_streaming() {
        // Startup delay at 12 Mbps must beat startup delay at 250 kbps.
        let (slow_q, slow_e) =
            run_profile(AppClass::Streaming, 250_000, Duration::from_millis(20), 1);
        let (fast_q, fast_e) = run_profile(
            AppClass::Streaming,
            12_000_000,
            Duration::from_millis(20),
            1,
        );
        assert!(fast_q > slow_q, "QoS index must grow with rate");
        assert!(fast_e < slow_e, "startup delay must shrink with rate");
    }

    #[test]
    fn psnr_worsens_with_latency() {
        let (_, good) = run_profile(
            AppClass::Conferencing,
            4_000_000,
            Duration::from_millis(20),
            2,
        );
        let (_, bad) = run_profile(
            AppClass::Conferencing,
            4_000_000,
            Duration::from_millis(900),
            2,
        );
        assert!(good > bad, "PSNR {good} should beat {bad} at high latency");
    }

    #[test]
    fn fitted_estimator_behaves_directionally() {
        let s = small_sweep();
        let (est, rmse) = fit_estimator_from_sweep(&s, QoeEstimator::paper_thresholds());
        for class in AppClass::ALL {
            assert!(rmse[class.index()].is_finite());
        }
        // Excellent QoS: everything acceptable.
        let good = exbox_net::QosSample {
            throughput_bps: 20_000_000.0,
            mean_delay: Duration::from_millis(10),
            loss_ratio: 0.0,
        };
        let bad = exbox_net::QosSample {
            throughput_bps: 150_000.0,
            mean_delay: Duration::from_millis(400),
            loss_ratio: 0.2,
        };
        for class in AppClass::ALL {
            assert!(est.acceptable(class, &good), "{class} rejected good QoS");
            assert!(!est.acceptable(class, &bad), "{class} accepted bad QoS");
        }
    }

    #[test]
    fn deterministic_sweep() {
        let a = small_sweep();
        let b = small_sweep();
        for class in AppClass::ALL {
            assert_eq!(a.points[class.index()], b.points[class.index()]);
        }
    }

    #[test]
    fn paper_grid_spans_paper_ranges() {
        let (rates, delays) = paper_grid();
        assert_eq!(*rates.first().expect("rates"), 100_000);
        assert_eq!(*rates.last().expect("rates"), 20_000_000);
        assert_eq!(*delays.first().expect("delays"), Duration::from_millis(10));
        assert_eq!(*delays.last().expect("delays"), Duration::from_millis(250));
    }
}
