//! Property-based tests for the testbed harness invariants.

use exbox_core::matrix::{SnrLevel, TrafficMatrix};
use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_sim::fluid::FluidWifi;
use exbox_testbed::cell::{default_fluid_demands, CellLabeler, CellModel};
use exbox_testbed::{build_samples, evaluate_online, SnrPolicy};
use exbox_traffic::ClassMix;
use proptest::prelude::*;

fn labeler() -> CellLabeler {
    CellLabeler::new(
        CellModel::WifiFluid {
            cfg: FluidWifi::default(),
            label_noise: 0.0,
            demands: default_fluid_demands(),
        },
        5,
    )
}

fn arb_mixes() -> impl Strategy<Value = Vec<ClassMix>> {
    prop::collection::vec((0u32..8, 0u32..8, 0u32..8), 1..25).prop_map(|v| {
        v.into_iter()
            .map(|(w, s, c)| ClassMix::new(w, s, c))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sample construction bookkeeping: the number of samples equals
    /// the number of count increases across the mix walk, and every
    /// sample's matrix total stays within the walk's bounds.
    #[test]
    fn sample_count_matches_arrivals(mixes in arb_mixes()) {
        let mut expected = 0u32;
        let mut prev = ClassMix::default();
        for &m in &mixes {
            expected += m.web.saturating_sub(prev.web)
                + m.streaming.saturating_sub(prev.streaming)
                + m.conferencing.saturating_sub(prev.conferencing);
            prev = m;
        }
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        prop_assert_eq!(samples.len(), expected as usize);
        for s in &samples {
            prop_assert!(s.matrix.total() >= 1);
            prop_assert!(s.matrix.total() <= 24, "matrix grew past the walk bound");
        }
    }

    /// The running matrix in samples is consistent: each sample's
    /// matrix contains the arriving kind.
    #[test]
    fn sample_matrix_contains_arrival(mixes in arb_mixes()) {
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        for s in &samples {
            prop_assert!(s.matrix.count(s.kind) >= 1, "arrival missing from matrix");
        }
    }

    /// Without an estimator, observed labels equal ground truth.
    #[test]
    fn observed_equals_truth_without_estimator(mixes in arb_mixes()) {
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        for s in &samples {
            prop_assert_eq!(s.observed, s.truth);
        }
    }

    /// Evaluation accounting: scored + bootstrap = total samples, and
    /// a no-bootstrap controller is scored on everything.
    #[test]
    fn evaluation_accounting(mixes in arb_mixes(), cap in 1u32..20) {
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        let mut mc = MaxClient::new(cap);
        let report = evaluate_online(&mut mc, &samples, 10);
        prop_assert_eq!(report.bootstrap_used, 0);
        prop_assert_eq!(report.confusion.total() as usize, samples.len());
        let per_class_total: u64 = report.per_class.iter().map(|c| c.total()).sum();
        prop_assert_eq!(per_class_total, report.confusion.total());
    }

    /// An oracle controller (decides from the sample truth) would be
    /// perfect — sanity for the scoring logic itself. We emulate one
    /// by replaying with MaxClient(u32::MAX) on all-Pos workloads.
    #[test]
    fn scoring_is_vacuously_perfect_on_admit_all_pos(n in 1u32..6) {
        let mixes = vec![ClassMix::new(n, 0, 0)];
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler(), None);
        prop_assume!(samples.iter().all(|s| s.truth == Label::Pos));
        let mut mc = MaxClient::new(u32::MAX);
        let report = evaluate_online(&mut mc, &samples, 5);
        prop_assert_eq!(report.metrics().accuracy, 1.0);
    }

    /// Empty-matrix edge: labelling the empty matrix is always Pos.
    #[test]
    fn empty_matrix_always_achievable(seed in any::<u64>()) {
        let mut lab = CellLabeler::new(
            CellModel::WifiFluid {
                cfg: FluidWifi::default(),
                label_noise: 0.2,
                demands: default_fluid_demands(),
            },
            seed,
        );
        prop_assert_eq!(lab.label(&TrafficMatrix::empty()).truth, Label::Pos);
    }

    /// Mixed-SNR policy only ever emits the two valid levels and
    /// respects determinism per seed.
    #[test]
    fn snr_policy_deterministic(mixes in arb_mixes(), seed in any::<u64>(), p in 0.0f64..1.0) {
        let a = build_samples(&mixes, SnrPolicy::RandomMix { p_low: p, seed }, &mut labeler(), None);
        let b = build_samples(&mixes, SnrPolicy::RandomMix { p_low: p, seed }, &mut labeler(), None);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert!(matches!(x.kind.snr, SnrLevel::Low | SnrLevel::High));
        }
    }
}
