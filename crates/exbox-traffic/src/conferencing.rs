//! Video-conferencing traffic model.
//!
//! Mirrors the paper's Video Conferencing App (§5.2): a Google
//! Hangouts call whose far end plays a prerecorded clip through a
//! virtual camera; the paper's ns-3 study replays "one-way video
//! conferencing traffic" from a Skype capture (§6.2). The model is a
//! real-time codec: fixed frame cadence (≈30 fps), frame sizes that
//! jitter around the target bitrate with occasional large key-frames,
//! each frame packetised at the MTU.
//!
//! QoE metric downstream: *PSNR* of the received video — driven by
//! loss and delay of the frame stream.

use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet};

use crate::dist::Rng;
use crate::TrafficModel;

/// Configuration for [`ConferencingModel`]. Defaults approximate a
/// 720p Hangouts/Skype call: 30 fps at ≈1.5 Mbps with key-frames
/// every ≈3 s.
#[derive(Debug, Clone)]
pub struct ConferencingModel {
    /// Target video bitrate, bits/s.
    pub bitrate_bps: f64,
    /// Frame rate, frames/s.
    pub fps: f64,
    /// Relative jitter of frame sizes (std/mean).
    pub frame_jitter: f64,
    /// Key-frame interval in frames (key-frames are ~3× larger).
    pub keyframe_interval: u32,
    /// Downlink packet size bound.
    pub mtu: u32,
    /// Uplink audio/control packet size.
    pub control_bytes: u32,
    /// Uplink control cadence.
    pub control_interval: Duration,
}

impl Default for ConferencingModel {
    fn default() -> Self {
        ConferencingModel {
            bitrate_bps: 1_500_000.0,
            fps: 30.0,
            frame_jitter: 0.25,
            keyframe_interval: 90,
            mtu: 1200,
            control_bytes: 160,
            control_interval: Duration::from_millis(100),
        }
    }
}

impl ConferencingModel {
    /// Mean frame size in bytes implied by bitrate and fps,
    /// accounting for key-frame inflation so the long-run rate still
    /// matches `bitrate_bps`.
    pub fn mean_frame_bytes(&self) -> f64 {
        // Per keyframe_interval frames: (interval-1) normal + 1 triple.
        let k = self.keyframe_interval as f64;
        let inflation = (k - 1.0 + 3.0) / k;
        self.bitrate_bps / 8.0 / self.fps / inflation
    }
}

impl TrafficModel for ConferencingModel {
    fn app_class(&self) -> AppClass {
        AppClass::Conferencing
    }

    fn generate(
        &self,
        flow: FlowKey,
        start: Instant,
        duration: Duration,
        seed: u64,
    ) -> Vec<Packet> {
        let mut rng = Rng::new(seed).derive(0xC0F);
        let end = start + duration;
        let frame_period = Duration::from_secs_f64(1.0 / self.fps);
        let base_frame = self.mean_frame_bytes();
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut t = start;
        let mut frame_no = 0u32;
        let mut next_control = start;

        while t < end {
            // Downlink video frame.
            let key = frame_no.is_multiple_of(self.keyframe_interval);
            let scale = if key { 3.0 } else { 1.0 };
            let size_f = rng
                .normal(base_frame * scale, base_frame * scale * self.frame_jitter)
                .max(200.0);
            let mut remaining = size_f as u64;
            // Packets of one frame leave back-to-back (codec flush).
            let mut pkt_t = t;
            while remaining > 0 && pkt_t < end {
                let size = remaining.min(self.mtu as u64) as u32;
                out.push(Packet::new(pkt_t, size, flow, Direction::Downlink, seq));
                seq += 1;
                remaining -= size as u64;
                pkt_t += Duration::from_micros(120); // pacing within frame
            }

            // Uplink control/audio at its own cadence.
            while next_control <= t {
                out.push(Packet::new(
                    next_control,
                    self.control_bytes,
                    flow,
                    Direction::Uplink,
                    seq,
                ));
                seq += 1;
                next_control += self.control_interval;
            }

            frame_no += 1;
            // Small cadence jitter (clock drift, encoder load).
            let jitter = rng.uniform_range(-0.1, 0.1);
            t += Duration::from_secs_f64(frame_period.as_secs_f64() * (1.0 + jitter));
        }
        out.sort_by_key(|p| (p.timestamp, p.seq));
        crate::note_generated(out.len());
        out
    }

    fn nominal_rate_bps(&self) -> f64 {
        self.bitrate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::downlink_rate_bps;
    use exbox_net::Protocol;

    fn key() -> FlowKey {
        FlowKey::synthetic(3, 3, 3, Protocol::Udp)
    }

    fn gen(secs: u64, seed: u64) -> Vec<Packet> {
        ConferencingModel::default().generate(key(), Instant::ZERO, Duration::from_secs(secs), seed)
    }

    #[test]
    fn long_run_rate_matches_bitrate() {
        let pkts = gen(60, 1);
        let rate = downlink_rate_bps(&pkts);
        assert!(
            (1_200_000.0..1_900_000.0).contains(&rate),
            "long-run rate {rate}"
        );
    }

    #[test]
    fn frame_cadence_is_steady() {
        let pkts = gen(10, 2);
        // Count distinct frame start times (> 2 ms gaps).
        let downs: Vec<Instant> = pkts
            .iter()
            .filter(|p| p.direction == Direction::Downlink)
            .map(|p| p.timestamp)
            .collect();
        let mut frames = 1;
        for w in downs.windows(2) {
            if w[1].saturating_since(w[0]) > Duration::from_millis(2) {
                frames += 1;
            }
        }
        // ~30 fps over 10 s => ~300 frames.
        assert!((250..=350).contains(&frames), "frame count {frames}");
    }

    #[test]
    fn keyframes_are_larger() {
        // Frame 0 is a key-frame; frames 1.. are deltas. Compare byte
        // volume of the first frame vs the second.
        let pkts = gen(1, 3);
        let mut frame_bytes = [0u64; 2];
        let mut frame_idx = 0usize;
        let mut last_t = None;
        for p in pkts.iter().filter(|p| p.direction == Direction::Downlink) {
            if let Some(prev) = last_t {
                if p.timestamp.saturating_since(prev) > Duration::from_millis(2) {
                    frame_idx += 1;
                    if frame_idx >= 2 {
                        break;
                    }
                }
            }
            frame_bytes[frame_idx] += p.size as u64;
            last_t = Some(p.timestamp);
        }
        assert!(
            frame_bytes[0] > frame_bytes[1] * 2,
            "keyframe {} vs delta {}",
            frame_bytes[0],
            frame_bytes[1]
        );
    }

    #[test]
    fn has_uplink_control_stream() {
        let pkts = gen(10, 4);
        let ups = pkts
            .iter()
            .filter(|p| p.direction == Direction::Uplink)
            .count();
        // 100 ms cadence over 10 s => ~100 control packets.
        assert!((80..=120).contains(&ups), "control packets {ups}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(5, 7), gen(5, 7));
        assert_ne!(gen(5, 7), gen(5, 8));
    }

    #[test]
    fn sorted_and_mtu_bounded() {
        let pkts = gen(5, 5);
        for w in pkts.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert!(pkts.iter().all(|p| p.size <= 1200));
    }

    #[test]
    fn mean_frame_accounts_for_keyframes() {
        let m = ConferencingModel::default();
        // 1.5 Mbps / 8 / 30 fps = 6250 B raw; inflation 92/90 shrinks it.
        let f = m.mean_frame_bytes();
        assert!(f < 6250.0 && f > 5000.0, "mean frame {f}");
    }
}
