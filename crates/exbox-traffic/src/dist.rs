//! Deterministic random samplers.
//!
//! The traffic models need a handful of classic distributions —
//! exponential inter-arrivals, log-normal object sizes, Pareto page
//! weights, Zipf app popularity. Implemented here over a seedable
//! xorshift64* core so the whole workload layer stays deterministic
//! and dependency-free.

/// Seedable PRNG with convenience samplers.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create from a seed (zero is remapped to a non-zero constant).
    pub fn new(seed: u64) -> Self {
        Rng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Derive an independent stream: useful to give each flow its own
    /// RNG from a (workload seed, flow id) pair without correlation.
    pub fn derive(&self, stream: u64) -> Rng {
        // SplitMix64 over the XOR of state and stream id.
        let mut z = self.state ^ stream.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid range");
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential sample with the given mean (inverse-CDF method).
    ///
    /// # Panics
    /// Panics unless `mean` is positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller; one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with mean `mu` and standard deviation `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        mu + sigma * self.standard_normal()
    }

    /// Log-normal sample parameterised by the *underlying* normal's
    /// `mu` and `sigma` (so the median is `e^mu`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Bounded Pareto sample with shape `alpha` on `[lo, hi]`.
    ///
    /// # Panics
    /// Panics unless `alpha > 0` and `0 < lo < hi`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(0.0 < lo && lo < hi, "need 0 < lo < hi");
        let u = self.uniform();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Zipf-distributed rank in `0..n` with exponent `s` (rank 0 most
    /// popular). Linear scan of the normalised CDF — fine for the
    /// small `n` (app catalogues) used here.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut u = self.uniform() * norm;
        for k in 1..=n {
            u -= 1.0 / (k as f64).powf(s);
            if u <= 0.0 {
                return k - 1;
            }
        }
        n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let base = Rng::new(42);
        let mut a = base.derive(1);
        let mut b = base.derive(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut r = Rng::new(7);
        let samples: Vec<f64> = (0..20_000).map(|_| r.uniform()).collect();
        assert!(samples.iter().all(|&v| (0.0..1.0).contains(&v)));
        assert!((mean_of(&samples) - 0.5).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut r = Rng::new(9);
        let samples: Vec<f64> = (0..30_000).map(|_| r.exponential(4.0)).collect();
        assert!((mean_of(&samples) - 4.0).abs() < 0.15);
        assert!(samples.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let samples: Vec<f64> = (0..30_000).map(|_| r.normal(3.0, 2.0)).collect();
        let m = mean_of(&samples);
        let var = samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / samples.len() as f64;
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = Rng::new(13);
        let mut samples: Vec<f64> = (0..20_001).map(|_| r.log_normal(1.0, 0.5)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 1.0f64.exp()).abs() < 0.15, "median {median}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut r = Rng::new(17);
        for _ in 0..5_000 {
            let v = r.bounded_pareto(1.2, 10.0, 1000.0);
            assert!((10.0..=1000.0).contains(&v), "out of bounds: {v}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut r = Rng::new(19);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| r.bounded_pareto(1.2, 10.0, 1e6))
            .collect();
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        // Heavy tail: mean far above median.
        assert!(mean_of(&samples) > 2.0 * median);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let mut r = Rng::new(23);
        let mut counts = [0usize; 5];
        for _ in 0..20_000 {
            counts[r.zipf(5, 1.0)] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "zipf counts not monotone: {counts:?}");
        }
        // Rank 0 should have roughly 1/H_5 ≈ 0.438 of the mass.
        let frac = counts[0] as f64 / 20_000.0;
        assert!((frac - 0.438).abs() < 0.03, "rank-0 share {frac}");
    }

    #[test]
    fn chance_probability() {
        let mut r = Rng::new(29);
        let hits = (0..20_000).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.3).abs() < 0.02);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Rng::new(0);
        // Would stay 0 forever if unmapped.
        assert_ne!(r.next_u64(), 0);
    }
}
