//! # exbox-traffic — application workloads for ExBox
//!
//! The paper drives its testbeds and ns-3 simulations with three
//! application classes whose QoE depends on different network
//! attributes (§5.2), using recorded packet traces of Skype, YouTube
//! and the BBC homepage replayed through `tcpreplay` (§6.2), plus two
//! flow-arrival patterns: fully `Random` and the Rice LiveLab usage
//! dataset. None of those artifacts are redistributable, so this crate
//! rebuilds each as a parameterised synthetic equivalent (substitution
//! table in `DESIGN.md`):
//!
//! * [`web`] — page-load sessions: uplink requests, bursty multi-object
//!   downlink responses (BBC-like, ≈1–2 MB pages).
//! * [`streaming`] — YouTube-HD-like: an aggressive startup burst that
//!   fills the playout buffer, then periodic chunk downloads.
//! * [`conferencing`] — Skype/Hangouts-like: ≈30 fps frames at a
//!   steady ≈1.5 Mbps with jitter.
//! * [`dist`] — the deterministic samplers (exponential, log-normal,
//!   Pareto, Zipf) the models draw from.
//! * [`workload`] — flow-population generators: the paper's `Random`
//!   scheme and a synthetic LiveLab-like scheme (34 users, diurnal
//!   sessions, chronologically ordered traffic matrices with heavy
//!   repetition).
//! * [`merge`] — `tcpreplay`-style merging of per-flow traces into a
//!   single chronological gateway trace.
//! * [`scale`] — streamed 10⁵–10⁶-user populations: the same LiveLab
//!   process as a lazy k-way-merged iterator (O(users + concurrent
//!   sessions) memory) with flash-crowd and mass-departure regimes.
//!
//! All generators are deterministic given their seed.

pub mod conferencing;
pub mod dist;
pub mod merge;
pub mod scale;
pub mod streaming;
pub mod web;
pub mod workload;

pub use conferencing::ConferencingModel;
pub use merge::merge_traces;
pub use scale::{EventStream, Regime, ScaledWorkload};
pub use streaming::StreamingModel;
pub use web::WebModel;
pub use workload::{ClassMix, LiveLabGenerator, RandomPattern, WorkloadEvent};

use exbox_net::{AppClass, Duration, FlowKey, Instant, Packet};

/// Record `n` generated packets on the process-wide
/// `traffic.packets_generated` counter (called by every
/// [`TrafficModel::generate`] implementation).
pub(crate) fn note_generated(n: usize) {
    use std::sync::{Arc, OnceLock};
    static C: OnceLock<Arc<exbox_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| exbox_obs::global().counter("traffic.packets_generated"))
        .add(n as u64);
}

/// A packet-level application traffic model.
///
/// Implementations generate the *offered* downlink/uplink load of one
/// flow — what the server and client would send onto an unconstrained
/// network. The wireless simulator then subjects this load to
/// contention, queueing and loss.
pub trait TrafficModel {
    /// The application class this model emulates.
    fn app_class(&self) -> AppClass;

    /// Generate the packets of one flow.
    ///
    /// * `flow` — the 5-tuple to stamp on every packet.
    /// * `start` — flow start time.
    /// * `duration` — how long the application stays active.
    /// * `seed` — RNG seed; equal seeds give identical traces.
    fn generate(&self, flow: FlowKey, start: Instant, duration: Duration, seed: u64)
        -> Vec<Packet>;

    /// Long-run average offered downlink rate in bits/s, used by the
    /// `RateBased` baseline controller as the flow's declared demand
    /// `c_f` (paper §5.3).
    fn nominal_rate_bps(&self) -> f64;
}

/// Compute the mean downlink rate of a generated trace in bits/s
/// (testing/calibration helper).
pub fn downlink_rate_bps(packets: &[Packet]) -> f64 {
    use exbox_net::Direction;
    let down: Vec<&Packet> = packets
        .iter()
        .filter(|p| p.direction == Direction::Downlink)
        .collect();
    if down.len() < 2 {
        return 0.0;
    }
    let first = down.iter().map(|p| p.timestamp).min().expect("non-empty");
    let last = down.iter().map(|p| p.timestamp).max().expect("non-empty");
    let span = last.saturating_since(first).as_secs_f64();
    if span <= 0.0 {
        return 0.0;
    }
    let bytes: u64 = down.iter().map(|p| p.size as u64).sum();
    bytes as f64 * 8.0 / span
}
