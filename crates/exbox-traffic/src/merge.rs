//! Trace merging — the `tcpreplay` step.
//!
//! The paper's ns-3 traffic generator "creates `a_web` instances of
//! the BBC packet trace, merges them and injects the merged trace"
//! (§6.2), using the tcpreplay suite to rewrite headers per instance.
//! [`merge_traces`] is the same operation: several per-flow traces
//! are interleaved into one chronological gateway trace, with each
//! instance's packets already carrying distinct `FlowKey`s (the
//! header-rewrite step happens at generation time via
//! `FlowKey::synthetic`).

use exbox_net::Packet;

/// Merge per-flow packet traces into one chronological trace.
///
/// Ties on timestamp are broken by (flow key, seq) so the output is
/// fully deterministic regardless of input order.
pub fn merge_traces(traces: Vec<Vec<Packet>>) -> Vec<Packet> {
    let mut all: Vec<Packet> = traces.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        a.timestamp
            .cmp(&b.timestamp)
            .then(a.flow.cmp(&b.flow))
            .then(a.seq.cmp(&b.seq))
    });
    all
}

/// Shift every packet of a trace by a constant offset — used to stagger
/// flow start times when replaying the same generated trace multiple
/// times (`tcpreplay --multiplier`-style reuse).
pub fn shift_trace(trace: &[Packet], offset: exbox_net::Duration) -> Vec<Packet> {
    trace
        .iter()
        .map(|p| {
            let mut q = *p;
            q.timestamp += offset;
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::{Direction, Duration, FlowKey, Instant, Protocol};

    fn pkt(ms: u64, flow_id: u32, seq: u64) -> Packet {
        Packet::new(
            Instant::from_millis(ms),
            100,
            FlowKey::synthetic(flow_id, flow_id, 1, Protocol::Udp),
            Direction::Downlink,
            seq,
        )
    }

    #[test]
    fn merge_is_chronological() {
        let a = vec![pkt(10, 1, 0), pkt(30, 1, 1)];
        let b = vec![pkt(5, 2, 0), pkt(20, 2, 1), pkt(40, 2, 2)];
        let merged = merge_traces(vec![a, b]);
        assert_eq!(merged.len(), 5);
        for w in merged.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert_eq!(merged[0].timestamp, Instant::from_millis(5));
    }

    #[test]
    fn merge_tie_break_is_deterministic() {
        let a = vec![pkt(10, 2, 0)];
        let b = vec![pkt(10, 1, 0)];
        let m1 = merge_traces(vec![a.clone(), b.clone()]);
        let m2 = merge_traces(vec![b, a]);
        assert_eq!(m1, m2);
    }

    #[test]
    fn merge_empty_inputs() {
        assert!(merge_traces(vec![]).is_empty());
        assert!(merge_traces(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn shift_moves_all_timestamps() {
        let t = vec![pkt(10, 1, 0), pkt(20, 1, 1)];
        let s = shift_trace(&t, Duration::from_millis(100));
        assert_eq!(s[0].timestamp, Instant::from_millis(110));
        assert_eq!(s[1].timestamp, Instant::from_millis(120));
        // Other fields untouched.
        assert_eq!(s[0].flow, t[0].flow);
        assert_eq!(s[0].size, t[0].size);
    }
}
