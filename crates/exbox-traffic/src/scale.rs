//! Streamed large-population workloads (ROADMAP item 4).
//!
//! [`LiveLabGenerator::events`] materialises and sorts every session
//! of every user — fine for the paper's 34 users, hopeless for the
//! 10⁵–10⁶-user populations the gateway's flow-state layer is sized
//! for. [`ScaledWorkload`] produces the *same* chronological event
//! stream lazily: one small cursor per user (its derived RNG, the
//! next pending session and a min-heap of open departures) merged
//! k-ways by `(time, user, sequence)` — memory is O(users +
//! concurrent sessions), never O(total events).
//!
//! Under [`Regime::Steady`] the stream is **draw-for-draw identical**
//! to [`LiveLabGenerator::events`] (asserted in this module's tests):
//! each user's RNG consumes the exact same sample sequence, and the
//! merge key reproduces the materialised sort order. The other
//! regimes stress the flow table the way real cells fail:
//!
//! * [`Regime::FlashCrowd`] — a stadium letting out: the candidate
//!   arrival process runs `boost`× hotter and thinning keeps the
//!   off-window rate unchanged, so arrivals spike only inside the
//!   window.
//! * [`Regime::MassDeparture`] — an access-network flap: each session
//!   spanning the cut instant ends there with probability `fraction`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use exbox_net::{AppClass, Instant};

use crate::dist::Rng;
use crate::workload::{LiveLabGenerator, WorkloadEvent};

/// Arrival/departure regime for a [`ScaledWorkload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Regime {
    /// The unmodified LiveLab process; draw-identical to
    /// [`LiveLabGenerator::events`].
    Steady,
    /// Arrival rate multiplied by `boost` inside
    /// `[start_secs, start_secs + duration_secs)`.
    FlashCrowd {
        /// Window start, seconds from the workload origin.
        start_secs: f64,
        /// Window length in seconds.
        duration_secs: f64,
        /// Rate multiplier inside the window (≥ 1).
        boost: f64,
    },
    /// Every session spanning `at_secs` is cut short there with
    /// probability `fraction`.
    MassDeparture {
        /// Cut instant, seconds from the workload origin.
        at_secs: f64,
        /// Probability that a spanning session departs at the cut.
        fraction: f64,
    },
}

/// A [`LiveLabGenerator`] population streamed through a [`Regime`].
#[derive(Debug, Clone)]
pub struct ScaledWorkload {
    generator: LiveLabGenerator,
    regime: Regime,
}

impl ScaledWorkload {
    /// Wrap a generator in a regime.
    ///
    /// # Panics
    /// Panics on nonsensical regime parameters (`boost < 1`,
    /// non-positive flash window, `fraction` outside `[0, 1]`).
    pub fn new(generator: LiveLabGenerator, regime: Regime) -> Self {
        match regime {
            Regime::Steady => {}
            Regime::FlashCrowd {
                duration_secs,
                boost,
                ..
            } => {
                assert!(boost >= 1.0, "flash-crowd boost must be >= 1");
                assert!(duration_secs > 0.0, "flash window must be non-empty");
            }
            Regime::MassDeparture { fraction, .. } => {
                assert!(
                    (0.0..=1.0).contains(&fraction),
                    "departure fraction must be in [0, 1]"
                );
            }
        }
        ScaledWorkload { generator, regime }
    }

    /// The wrapped generator.
    pub fn generator(&self) -> &LiveLabGenerator {
        &self.generator
    }

    /// Lazily stream the chronological `(time, event)` sequence.
    pub fn stream(&self) -> EventStream {
        EventStream::new(&self.generator, self.regime)
    }
}

/// A session not yet emitted as an arrival (its departure is already
/// queued on the cursor's heap).
#[derive(Debug, Clone, Copy)]
struct PendingArrival {
    start_ns: u64,
    seq: u64,
    class: AppClass,
}

/// Per-user lazy event source: the user's derived RNG plus the open
/// sessions' departures. Yields that user's events in `(t_ns, seq)`
/// order, drawing RNG samples in exactly the order the materialised
/// generator does.
#[derive(Debug)]
struct UserCursor {
    rng: Rng,
    /// Arrival-process clock, seconds.
    t: f64,
    /// Per-user event sequence: session `i` emits arrival `2i` and
    /// departure `2i + 1`, matching the materialised push order.
    seq: u64,
    next_arrival: Option<PendingArrival>,
    /// Open sessions as `(end_ns, seq, class index)`, min-first.
    departures: BinaryHeap<Reverse<(u64, u64, u8)>>,
    /// The arrival process ran past the horizon.
    exhausted: bool,
}

/// Population-wide parameters shared by every cursor.
#[derive(Debug, Clone, Copy)]
struct StreamParams {
    horizon: f64,
    peak_rate: f64,
    w_max: f64,
    session_length_scale: f64,
    regime: Regime,
}

impl UserCursor {
    fn new(rng: Rng, params: &StreamParams) -> Self {
        let mut cursor = UserCursor {
            rng,
            t: 0.0,
            seq: 0,
            next_arrival: None,
            departures: BinaryHeap::new(),
            exhausted: false,
        };
        cursor.refill(params);
        cursor
    }

    /// Draw candidates until one is accepted (becoming the pending
    /// arrival, with its departure queued) or the horizon is crossed.
    /// Under [`Regime::Steady`] the sample sequence is identical to
    /// [`LiveLabGenerator::events`].
    fn refill(&mut self, params: &StreamParams) {
        debug_assert!(self.next_arrival.is_none());
        if self.exhausted {
            return;
        }
        let (rate_mult, flash) = match params.regime {
            Regime::FlashCrowd {
                start_secs,
                duration_secs,
                boost,
            } => (boost, Some((start_secs, start_secs + duration_secs, boost))),
            _ => (1.0, None),
        };
        loop {
            self.t += self.rng.exponential(1.0 / (params.peak_rate * rate_mult));
            if self.t >= params.horizon {
                self.exhausted = true;
                return;
            }
            let hour = (self.t % 86_400.0) / 3_600.0;
            let w = LiveLabGenerator::diurnal_weight(hour);
            // Thinning: the acceptance probability divides out the
            // boosted candidate rate except inside the flash window,
            // so the off-window process is unchanged in distribution.
            let boost_now = match flash {
                Some((start, end, boost)) if (start..end).contains(&self.t) => boost,
                _ => 1.0,
            };
            if !self.rng.chance(w * boost_now / (params.w_max * rate_mult)) {
                continue;
            }
            let class = AppClass::from_index(self.rng.zipf(3, 1.1));
            let dur = self
                .rng
                .exponential(
                    LiveLabGenerator::mean_session_secs(class) * params.session_length_scale,
                )
                .max(10.0);
            let mut end_secs = (self.t + dur).min(params.horizon);
            if let Regime::MassDeparture { at_secs, fraction } = params.regime {
                if self.t < at_secs && at_secs < end_secs && self.rng.chance(fraction) {
                    end_secs = at_secs;
                }
            }
            let start_ns = (self.t * 1e9) as u64;
            let end_ns = (end_secs * 1e9) as u64;
            let arrival_seq = self.seq;
            self.next_arrival = Some(PendingArrival {
                start_ns,
                seq: arrival_seq,
                class,
            });
            self.departures
                .push(Reverse((end_ns, arrival_seq + 1, class.index() as u8)));
            self.seq += 2;
            return;
        }
    }

    /// This user's next event key without consuming it.
    fn peek_key(&self) -> Option<(u64, u64)> {
        let arrival = self.next_arrival.map(|a| (a.start_ns, a.seq));
        let departure = self.departures.peek().map(|&Reverse((t, s, _))| (t, s));
        match (arrival, departure) {
            (Some(a), Some(d)) => Some(a.min(d)),
            (a, d) => a.or(d),
        }
    }

    /// Consume this user's next event.
    fn pop(&mut self, params: &StreamParams) -> Option<(u64, u64, WorkloadEvent)> {
        let arrival = self.next_arrival.map(|a| (a.start_ns, a.seq));
        let departure = self.departures.peek().map(|&Reverse((t, s, _))| (t, s));
        let take_arrival = match (arrival, departure) {
            (Some(a), Some(d)) => a < d,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_arrival {
            let pending = self.next_arrival.take().expect("peeked arrival");
            self.refill(params);
            Some((
                pending.start_ns,
                pending.seq,
                WorkloadEvent::Arrival(pending.class),
            ))
        } else {
            let Reverse((t, s, class)) = self.departures.pop()?;
            Some((
                t,
                s,
                WorkloadEvent::Departure(AppClass::from_index(class as usize)),
            ))
        }
    }
}

/// Lazy k-way merge over the per-user cursors; see the module docs
/// for the memory contract and the determinism guarantee.
#[derive(Debug)]
pub struct EventStream {
    params: StreamParams,
    cursors: Vec<UserCursor>,
    /// Merge frontier: each live user's next event as
    /// `(t_ns, user, seq)`, min-first. `seq` is per-user, so the key
    /// reproduces the materialised sort by `(t, global eseq)` — the
    /// global sequence is lexicographic in `(user, per-user seq)`.
    frontier: BinaryHeap<Reverse<(u64, u32, u64)>>,
}

impl EventStream {
    fn new(generator: &LiveLabGenerator, regime: Regime) -> Self {
        assert!(generator.users > 0, "need at least one user");
        assert!(
            generator.users <= u32::MAX as usize,
            "user index must fit u32"
        );
        let rng = Rng::new(generator.seed).derive(0x11F3);
        let horizon = generator.days as f64 * 86_400.0;
        let avg_weight: f64 = (0..24)
            .map(|h| LiveLabGenerator::diurnal_weight(h as f64))
            .sum::<f64>()
            / 24.0;
        let params = StreamParams {
            horizon,
            peak_rate: generator.sessions_per_user_day / 86_400.0 / avg_weight,
            w_max: LiveLabGenerator::diurnal_weight(20.0),
            session_length_scale: generator.session_length_scale,
            regime,
        };
        let mut cursors = Vec::with_capacity(generator.users);
        let mut frontier = BinaryHeap::with_capacity(generator.users);
        for user in 0..generator.users {
            let cursor = UserCursor::new(rng.derive(user as u64 + 1), &params);
            if let Some((t, s)) = cursor.peek_key() {
                frontier.push(Reverse((t, user as u32, s)));
            }
            cursors.push(cursor);
        }
        EventStream {
            params,
            cursors,
            frontier,
        }
    }

    /// Events not yet emitted for any user, cheaply bounded: `true`
    /// while the stream has more items.
    pub fn has_more(&self) -> bool {
        !self.frontier.is_empty()
    }
}

impl Iterator for EventStream {
    type Item = (Instant, WorkloadEvent);

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse((_, user, _)) = self.frontier.pop()?;
        let cursor = &mut self.cursors[user as usize];
        let (t_ns, _, event) = cursor
            .pop(&self.params)
            .expect("frontier entry implies a pending event");
        if let Some((t, s)) = cursor.peek_key() {
            self.frontier.push(Reverse((t, user, s)));
        }
        Some((Instant::from_nanos(t_ns), event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(workload: &ScaledWorkload) -> Vec<(Instant, WorkloadEvent)> {
        workload.stream().collect()
    }

    #[test]
    fn steady_stream_is_identical_to_materialized_events() {
        let generator = LiveLabGenerator::default();
        let streamed = drain(&ScaledWorkload::new(generator.clone(), Regime::Steady));
        assert_eq!(streamed, generator.events());
    }

    #[test]
    fn steady_stream_matches_under_nondefault_parameters() {
        let generator = LiveLabGenerator {
            users: 77,
            days: 2,
            sessions_per_user_day: 3.5,
            session_length_scale: 2.0,
            seed: 0xBEEF,
        };
        let streamed = drain(&ScaledWorkload::new(generator.clone(), Regime::Steady));
        assert_eq!(streamed, generator.events());
    }

    #[test]
    fn stream_is_deterministic() {
        let workload = ScaledWorkload::new(
            LiveLabGenerator::default(),
            Regime::FlashCrowd {
                start_secs: 3_600.0,
                duration_secs: 1_800.0,
                boost: 8.0,
            },
        );
        assert_eq!(drain(&workload), drain(&workload));
    }

    #[test]
    fn events_balance_and_stay_chronological_in_every_regime() {
        for regime in [
            Regime::Steady,
            Regime::FlashCrowd {
                start_secs: 40_000.0,
                duration_secs: 3_600.0,
                boost: 6.0,
            },
            Regime::MassDeparture {
                at_secs: 70_000.0,
                fraction: 0.9,
            },
        ] {
            let events = drain(&ScaledWorkload::new(LiveLabGenerator::default(), regime));
            assert!(!events.is_empty());
            for pair in events.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "stream out of order ({regime:?})");
            }
            let arrivals = events
                .iter()
                .filter(|(_, e)| matches!(e, WorkloadEvent::Arrival(_)))
                .count();
            assert_eq!(
                2 * arrivals,
                events.len(),
                "unbalanced sessions ({regime:?})"
            );
        }
    }

    #[test]
    fn flash_crowd_boosts_only_its_window() {
        let window = (86_400.0 + 60_000.0, 86_400.0 + 63_600.0);
        let in_window = |t: Instant| {
            let secs = t.as_nanos() as f64 / 1e9;
            (window.0..window.1).contains(&secs)
        };
        let arrivals_in = |events: &[(Instant, WorkloadEvent)]| {
            events
                .iter()
                .filter(|(t, e)| matches!(e, WorkloadEvent::Arrival(_)) && in_window(*t))
                .count()
        };
        let steady = drain(&ScaledWorkload::new(
            LiveLabGenerator::default(),
            Regime::Steady,
        ));
        let crowd = drain(&ScaledWorkload::new(
            LiveLabGenerator::default(),
            Regime::FlashCrowd {
                start_secs: window.0,
                duration_secs: window.1 - window.0,
                boost: 10.0,
            },
        ));
        assert!(
            arrivals_in(&crowd) >= 4 * arrivals_in(&steady).max(1),
            "flash window not boosted: {} vs {}",
            arrivals_in(&crowd),
            arrivals_in(&steady)
        );
        // Total arrival mass outside the window stays in the same
        // ballpark (thinning keeps the off-window rate unchanged in
        // distribution, though the draws themselves differ).
        let outside = |events: &[(Instant, WorkloadEvent)]| {
            events
                .iter()
                .filter(|(t, e)| matches!(e, WorkloadEvent::Arrival(_)) && !in_window(*t))
                .count() as f64
        };
        let ratio = outside(&crowd) / outside(&steady);
        assert!(
            (0.5..2.0).contains(&ratio),
            "off-window rate drifted: ratio {ratio}"
        );
    }

    #[test]
    fn mass_departure_drains_spanning_sessions() {
        let at = 86_400.0 + 72_000.0; // evening of day 2
        let concurrent_at = |events: &[(Instant, WorkloadEvent)], secs: f64| {
            let cut = Instant::from_nanos((secs * 1e9) as u64);
            let mut n: i64 = 0;
            for (t, e) in events {
                if *t > cut {
                    break;
                }
                match e {
                    WorkloadEvent::Arrival(_) => n += 1,
                    WorkloadEvent::Departure(_) => n -= 1,
                }
            }
            n
        };
        let steady = drain(&ScaledWorkload::new(
            LiveLabGenerator {
                users: 200,
                ..LiveLabGenerator::default()
            },
            Regime::Steady,
        ));
        let flap = drain(&ScaledWorkload::new(
            LiveLabGenerator {
                users: 200,
                ..LiveLabGenerator::default()
            },
            Regime::MassDeparture {
                at_secs: at,
                fraction: 0.95,
            },
        ));
        let before = concurrent_at(&steady, at + 1.0);
        let after = concurrent_at(&flap, at + 1.0);
        assert!(
            after * 4 < before.max(4),
            "cut did not drain the cell: {after} of {before} left"
        );
    }

    #[test]
    fn large_population_streams_lazily() {
        // 10⁵ users construct in O(users) and the first events arrive
        // without materialising the full trace.
        let workload = ScaledWorkload::new(
            LiveLabGenerator {
                users: 100_000,
                days: 1,
                ..LiveLabGenerator::default()
            },
            Regime::Steady,
        );
        let mut stream = workload.stream();
        assert!(stream.has_more());
        let mut last = Instant::ZERO;
        for (t, _) in stream.by_ref().take(10_000) {
            assert!(t >= last);
            last = t;
        }
        assert!(stream.has_more());
    }
}
