//! Video-streaming traffic model.
//!
//! Mirrors the paper's Video Streaming App (§5.2): a YouTube player
//! repeatedly playing a ≈2-minute HD (720p) clip. The paper observes
//! that "most of the content is downloaded during the initial
//! start-up delay period" — so the model is a large startup burst
//! (playout-buffer fill) offered as fast as the server can push,
//! followed by periodic steady-state chunk downloads at the media
//! bitrate.
//!
//! QoE metric downstream: *startup delay* — time until the buffer-fill
//! bytes have arrived at the client.

use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet};

use crate::dist::Rng;
use crate::TrafficModel;

/// Configuration for [`StreamingModel`]. Defaults approximate a 720p
/// stream: ≈2.5 Mbps media bitrate, 8 s of media buffered at startup,
/// 5 s chunks thereafter.
#[derive(Debug, Clone)]
pub struct StreamingModel {
    /// Media bitrate in bits/s (HD ≈ 2.5 Mbps).
    pub media_bitrate_bps: f64,
    /// Seconds of media pre-buffered during startup.
    pub startup_media_secs: f64,
    /// Seconds of media per steady-state chunk.
    pub chunk_media_secs: f64,
    /// Offered burst rate of the CDN server, bits/s.
    pub burst_rate_bps: f64,
    /// Downlink packet size.
    pub mtu: u32,
    /// Uplink request size (range requests / ACK clusters).
    pub request_bytes: u32,
}

impl Default for StreamingModel {
    fn default() -> Self {
        StreamingModel {
            media_bitrate_bps: 2_500_000.0,
            startup_media_secs: 8.0,
            chunk_media_secs: 5.0,
            burst_rate_bps: 40_000_000.0,
            mtu: 1400,
            request_bytes: 200,
        }
    }
}

impl StreamingModel {
    /// Bytes in the startup burst.
    pub fn startup_bytes(&self) -> u64 {
        (self.media_bitrate_bps * self.startup_media_secs / 8.0) as u64
    }

    /// Bytes per steady-state chunk.
    pub fn chunk_bytes(&self) -> u64 {
        (self.media_bitrate_bps * self.chunk_media_secs / 8.0) as u64
    }

    /// Emit one download burst of `bytes` starting at `t`, returning
    /// the time the last packet was offered.
    fn burst(
        &self,
        out: &mut Vec<Packet>,
        flow: FlowKey,
        mut t: Instant,
        end: Instant,
        bytes: u64,
        seq: &mut u64,
    ) -> Instant {
        let mut remaining = bytes;
        while remaining > 0 && t < end {
            let size = remaining.min(self.mtu as u64) as u32;
            out.push(Packet::new(t, size, flow, Direction::Downlink, *seq));
            *seq += 1;
            remaining -= size as u64;
            t += Duration::transmission(size as u64, self.burst_rate_bps as u64);
        }
        t
    }
}

impl TrafficModel for StreamingModel {
    fn app_class(&self) -> AppClass {
        AppClass::Streaming
    }

    fn generate(
        &self,
        flow: FlowKey,
        start: Instant,
        duration: Duration,
        seed: u64,
    ) -> Vec<Packet> {
        let mut rng = Rng::new(seed).derive(0x57E4);
        let end = start + duration;
        let mut out = Vec::new();
        let mut seq = 0u64;

        // Player requests the manifest + first ranges.
        out.push(Packet::new(
            start,
            self.request_bytes,
            flow,
            Direction::Uplink,
            seq,
        ));
        seq += 1;

        // Startup burst: buffer fill at server speed.
        let t = self.burst(
            &mut out,
            flow,
            start + Duration::from_millis(30),
            end,
            self.startup_bytes(),
            &mut seq,
        );

        // Steady state: one chunk per chunk_media_secs, keeping the
        // buffer level. Chunk request times jitter slightly as a real
        // rate-adaptive player's do.
        let mut media_clock = t;
        while media_clock < end {
            let jitter = rng.uniform_range(-0.2, 0.2);
            media_clock += Duration::from_secs_f64((self.chunk_media_secs + jitter).max(0.5));
            if media_clock >= end {
                break;
            }
            out.push(Packet::new(
                media_clock,
                self.request_bytes,
                flow,
                Direction::Uplink,
                seq,
            ));
            seq += 1;
            self.burst(
                &mut out,
                flow,
                media_clock,
                end,
                self.chunk_bytes(),
                &mut seq,
            );
        }
        out.sort_by_key(|p| (p.timestamp, p.seq));
        crate::note_generated(out.len());
        out
    }

    fn nominal_rate_bps(&self) -> f64 {
        self.media_bitrate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::downlink_rate_bps;
    use exbox_net::Protocol;

    fn key() -> FlowKey {
        FlowKey::synthetic(2, 2, 2, Protocol::Tcp)
    }

    fn gen(secs: u64, seed: u64) -> Vec<Packet> {
        StreamingModel::default().generate(key(), Instant::ZERO, Duration::from_secs(secs), seed)
    }

    #[test]
    fn startup_burst_precedes_steady_state() {
        let m = StreamingModel::default();
        let pkts = gen(60, 1);
        // All startup bytes offered within the first second (burst at
        // 40 Mbps for 2.5 MB takes ~0.5 s).
        let early_bytes: u64 = pkts
            .iter()
            .filter(|p| p.direction == Direction::Downlink)
            .filter(|p| p.timestamp < Instant::from_secs(1))
            .map(|p| p.size as u64)
            .sum();
        assert!(
            early_bytes >= m.startup_bytes() * 9 / 10,
            "startup burst missing: {early_bytes} of {}",
            m.startup_bytes()
        );
    }

    #[test]
    fn long_run_rate_approximates_media_bitrate() {
        let pkts = gen(120, 2);
        let rate = downlink_rate_bps(&pkts);
        // Startup burst inflates it slightly above media bitrate.
        assert!(
            (2_000_000.0..5_000_000.0).contains(&rate),
            "long-run rate {rate}"
        );
    }

    #[test]
    fn chunks_arrive_periodically() {
        let pkts = gen(60, 3);
        let requests: Vec<Instant> = pkts
            .iter()
            .filter(|p| p.direction == Direction::Uplink)
            .map(|p| p.timestamp)
            .collect();
        // 60 s at ~5 s chunks => about 10-12 requests.
        assert!(
            (8..=16).contains(&requests.len()),
            "request count {}",
            requests.len()
        );
    }

    #[test]
    fn sorted_and_bounded() {
        let pkts = gen(30, 4);
        for w in pkts.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        assert!(pkts.iter().all(|p| p.timestamp < Instant::from_secs(30)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(20, 9), gen(20, 9));
        assert_ne!(gen(20, 9), gen(20, 10));
    }

    #[test]
    fn helper_byte_counts() {
        let m = StreamingModel::default();
        assert_eq!(m.startup_bytes(), 2_500_000);
        assert_eq!(m.chunk_bytes(), 1_562_500);
        assert_eq!(m.app_class(), AppClass::Streaming);
        assert_eq!(m.nominal_rate_bps(), 2_500_000.0);
    }

    #[test]
    fn short_flow_is_truncated_cleanly() {
        // 1-second flow: only part of the startup burst fits.
        let pkts = gen(1, 5);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.timestamp < Instant::from_secs(1)));
    }
}
