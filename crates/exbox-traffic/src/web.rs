//! Web-browsing traffic model.
//!
//! Mirrors the paper's Web Browsing App (§5.2): a client that
//! "continually loads a specific sequence of webpages" of similar
//! size (mobile Amazon/BBC/YouTube homepages), clearing the cache
//! between loads. Each page load is: an uplink GET, then a burst of
//! downlink objects (HTML, CSS, images) whose sizes are log-normal,
//! followed by client think time before the next page.
//!
//! QoE metric downstream: *page load time* — how long the burst takes
//! to fully arrive at the client once subjected to the network.

use exbox_net::{AppClass, Direction, Duration, FlowKey, Instant, Packet};

use crate::dist::Rng;
use crate::TrafficModel;

/// Configuration for [`WebModel`]. Defaults approximate a ≈1.5 MB
/// mobile news page of ≈30 objects loaded every ≈8 s.
#[derive(Debug, Clone)]
pub struct WebModel {
    /// Mean total page weight in bytes.
    pub page_bytes_mean: f64,
    /// Log-normal sigma of per-object sizes (spread of object sizes).
    pub object_size_sigma: f64,
    /// Mean number of objects per page.
    pub objects_per_page: usize,
    /// MTU-bounded downlink packet size.
    pub mtu: u32,
    /// Uplink request size in bytes.
    pub request_bytes: u32,
    /// Mean think time between page loads.
    pub think_time: Duration,
    /// Gap between consecutive objects within a page (browser request
    /// pipelining grain).
    pub object_gap: Duration,
    /// Offered burst rate while a page downloads, bits/s (server +
    /// backbone speed; the wireless hop will be the bottleneck).
    pub burst_rate_bps: f64,
}

impl Default for WebModel {
    fn default() -> Self {
        WebModel {
            page_bytes_mean: 1_500_000.0,
            object_size_sigma: 0.8,
            objects_per_page: 30,
            mtu: 1400,
            request_bytes: 350,
            think_time: Duration::from_secs(8),
            object_gap: Duration::from_millis(5),
            burst_rate_bps: 40_000_000.0,
        }
    }
}

impl TrafficModel for WebModel {
    fn app_class(&self) -> AppClass {
        AppClass::Web
    }

    fn generate(
        &self,
        flow: FlowKey,
        start: Instant,
        duration: Duration,
        seed: u64,
    ) -> Vec<Packet> {
        let mut rng = Rng::new(seed).derive(0x3EB);
        let end = start + duration;
        let mut t = start;
        let mut seq = 0u64;
        let mut out = Vec::new();
        let mean_object = self.page_bytes_mean / self.objects_per_page as f64;
        // Log-normal mu chosen so the object-size *mean* matches:
        // E[LN(mu, s)] = e^{mu + s²/2}.
        let mu = mean_object.ln() - self.object_size_sigma * self.object_size_sigma / 2.0;

        while t < end {
            // Uplink GET for the page itself.
            out.push(Packet::new(
                t,
                self.request_bytes,
                flow,
                Direction::Uplink,
                seq,
            ));
            seq += 1;
            // Server response: a burst of objects, each preceded by
            // its own uplink GET (browsers request objects as the
            // HTML parser discovers them).
            let mut obj_t = t + Duration::from_millis(20); // server RTT
            for obj in 0..self.objects_per_page {
                if obj_t >= end {
                    break;
                }
                if obj > 0 {
                    out.push(Packet::new(
                        obj_t,
                        self.request_bytes,
                        flow,
                        Direction::Uplink,
                        seq,
                    ));
                    seq += 1;
                    obj_t += Duration::from_millis(3); // request RTT share
                    if obj_t >= end {
                        break;
                    }
                }
                let obj_bytes = rng.log_normal(mu, self.object_size_sigma).max(200.0) as u64;
                let mut remaining = obj_bytes;
                while remaining > 0 {
                    let size = remaining.min(self.mtu as u64) as u32;
                    out.push(Packet::new(obj_t, size, flow, Direction::Downlink, seq));
                    seq += 1;
                    remaining -= size as u64;
                    obj_t += Duration::transmission(size as u64, self.burst_rate_bps as u64);
                    if obj_t >= end {
                        break;
                    }
                }
                obj_t += self.object_gap;
            }
            // Think, then load the next page.
            let think = rng.exponential(self.think_time.as_secs_f64());
            t = obj_t + Duration::from_secs_f64(think);
        }
        crate::note_generated(out.len());
        out
    }

    fn nominal_rate_bps(&self) -> f64 {
        // Average over the load/think cycle: one page per
        // (download + think) period. Download time is dominated by the
        // wireless hop in practice; for the declared demand we use the
        // long-run mean, matching how rate-based admission products
        // provision web traffic.
        let cycle = self.think_time.as_secs_f64() + 1.0;
        self.page_bytes_mean * 8.0 / cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exbox_net::Protocol;

    fn key() -> FlowKey {
        FlowKey::synthetic(1, 1, 1, Protocol::Tcp)
    }

    fn gen(duration_s: u64, seed: u64) -> Vec<Packet> {
        WebModel::default().generate(key(), Instant::ZERO, Duration::from_secs(duration_s), seed)
    }

    #[test]
    fn produces_pages_with_requests_and_responses() {
        let pkts = gen(30, 1);
        let ups = pkts
            .iter()
            .filter(|p| p.direction == Direction::Uplink)
            .count();
        let downs = pkts
            .iter()
            .filter(|p| p.direction == Direction::Downlink)
            .count();
        assert!(ups >= 2, "expected multiple page requests, got {ups}");
        assert!(downs > 100, "expected many response packets, got {downs}");
    }

    #[test]
    fn page_weight_in_expected_range() {
        // Count pages by think-time gaps (>= 1 s of uplink silence).
        let pkts = gen(300, 2);
        let ups: Vec<Instant> = pkts
            .iter()
            .filter(|p| p.direction == Direction::Uplink)
            .map(|p| p.timestamp)
            .collect();
        let mut pages = 1usize;
        for w in ups.windows(2) {
            if w[1].saturating_since(w[0]) >= Duration::from_secs(1) {
                pages += 1;
            }
        }
        let down_bytes: u64 = pkts
            .iter()
            .filter(|p| p.direction == Direction::Downlink)
            .map(|p| p.size as u64)
            .sum();
        let per_page = down_bytes as f64 / pages as f64;
        // Mean page ≈1.5 MB; log-normal spread means wide tolerance.
        assert!(
            (500_000.0..4_000_000.0).contains(&per_page),
            "page weight {per_page} over {pages} pages"
        );
    }

    #[test]
    fn timestamps_within_bounds_and_sorted() {
        let pkts = gen(20, 3);
        let end = Instant::from_secs(20);
        for w in pkts.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp, "unsorted");
        }
        assert!(pkts.iter().all(|p| p.timestamp < end));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gen(10, 7), gen(10, 7));
        assert_ne!(gen(10, 7), gen(10, 8));
    }

    #[test]
    fn packets_respect_mtu() {
        let pkts = gen(20, 4);
        assert!(pkts.iter().all(|p| p.size <= 1400));
    }

    #[test]
    fn seq_numbers_strictly_increase() {
        let pkts = gen(10, 5);
        for w in pkts.windows(2) {
            assert!(w[1].seq > w[0].seq);
        }
    }

    #[test]
    fn app_class_is_web() {
        assert_eq!(WebModel::default().app_class(), AppClass::Web);
        assert!(WebModel::default().nominal_rate_bps() > 0.0);
    }
}
