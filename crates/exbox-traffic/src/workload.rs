//! Flow-population workloads: traffic-matrix sequences.
//!
//! The paper evaluates with two traffic patterns (§5.2):
//!
//! * **Random** — "completely random flow arrival/departure traffic
//!   pattern. Thus (#web, #stream, #videoconf) can change randomly and
//!   drastically."
//! * **LiveLab** — matrices mined from Rice University's LiveLab
//!   dataset (34 users, ≈1.4 M app-usage log entries), reduced to
//!   ≈1700 chronologically ordered (#web, #stream, #videoconf)
//!   matrices with heavy repetition and smooth transitions.
//!
//! The real LiveLab traces are not redistributable; the
//! [`LiveLabGenerator`] reproduces the *properties the paper relies
//! on* — user count, chronology, ±1-flow transitions, diurnal session
//! behaviour, repetition — via a synthetic session simulator (see
//! DESIGN.md substitution table).

use exbox_net::{AppClass, Instant};

use crate::dist::Rng;

/// A traffic mix: how many flows of each class are simultaneously
/// active. This is the paper's `<a_web, a_streaming, a_conferencing>`
/// (before SNR splitting, which the testbed layer adds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClassMix {
    /// Active web flows.
    pub web: u32,
    /// Active streaming flows.
    pub streaming: u32,
    /// Active conferencing flows.
    pub conferencing: u32,
}

impl ClassMix {
    /// Construct a mix.
    pub fn new(web: u32, streaming: u32, conferencing: u32) -> Self {
        ClassMix {
            web,
            streaming,
            conferencing,
        }
    }

    /// Count for one class.
    pub fn count(&self, class: AppClass) -> u32 {
        match class {
            AppClass::Web => self.web,
            AppClass::Streaming => self.streaming,
            AppClass::Conferencing => self.conferencing,
        }
    }

    /// Mutable count for one class.
    pub fn count_mut(&mut self, class: AppClass) -> &mut u32 {
        match class {
            AppClass::Web => &mut self.web,
            AppClass::Streaming => &mut self.streaming,
            AppClass::Conferencing => &mut self.conferencing,
        }
    }

    /// Total simultaneous flows.
    pub fn total(&self) -> u32 {
        self.web + self.streaming + self.conferencing
    }

    /// Counts in canonical [`AppClass::ALL`] order.
    pub fn as_array(&self) -> [u32; 3] {
        [self.web, self.streaming, self.conferencing]
    }
}

impl std::fmt::Display for ClassMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.web, self.streaming, self.conferencing)
    }
}

/// One flow arrival or departure in a chronological workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadEvent {
    /// A new flow of the given class starts.
    Arrival(AppClass),
    /// A flow of the given class ends.
    Departure(AppClass),
}

/// The paper's `Random` pattern: each matrix is drawn independently
/// and uniformly, so consecutive matrices can jump "randomly and
/// drastically" — the diverse training the paper credits for faster
/// bootstrap.
#[derive(Debug, Clone)]
pub struct RandomPattern {
    /// Upper bound per class (inclusive).
    pub max_per_class: u32,
    /// Upper bound on the total (matrices above it are re-drawn).
    pub max_total: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RandomPattern {
    /// Create a pattern bounded by per-class and total caps.
    ///
    /// # Panics
    /// Panics if `max_total == 0` or no single-class flow would fit.
    pub fn new(max_per_class: u32, max_total: u32, seed: u64) -> Self {
        assert!(max_total >= 1, "max_total must allow at least one flow");
        assert!(max_per_class >= 1, "max_per_class must be at least 1");
        RandomPattern {
            max_per_class,
            max_total,
            seed,
        }
    }

    /// Draw `n` matrices.
    pub fn matrices(&self, n: usize) -> Vec<ClassMix> {
        let mut rng = Rng::new(self.seed).derive(0x4A4D);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let m = ClassMix::new(
                rng.index(self.max_per_class as usize + 1) as u32,
                rng.index(self.max_per_class as usize + 1) as u32,
                rng.index(self.max_per_class as usize + 1) as u32,
            );
            if m.total() <= self.max_total && m.total() > 0 {
                out.push(m);
            }
        }
        out
    }
}

/// Synthetic LiveLab-like workload: `users` smartphone users whose app
/// sessions start with diurnally-modulated Poisson arrivals; app class
/// popularity is Zipf-like (web ≫ streaming > conferencing), session
/// lengths exponential per class. Walking the session start/end events
/// yields the chronological traffic-matrix sequence.
#[derive(Debug, Clone)]
pub struct LiveLabGenerator {
    /// Number of users (paper: 34).
    pub users: usize,
    /// Simulated span in days (default tuned to yield ≈1700 matrices).
    pub days: u32,
    /// Mean sessions per user per day across all classes.
    pub sessions_per_user_day: f64,
    /// Multiplier on mean session lengths (1.0 = the defaults;
    /// binge-heavy populations hold sessions open longer, raising
    /// concurrency without raising arrival churn).
    pub session_length_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LiveLabGenerator {
    fn default() -> Self {
        LiveLabGenerator {
            users: 34,
            days: 3,
            sessions_per_user_day: 8.0,
            session_length_scale: 1.0,
            seed: 0x11FE,
        }
    }
}

impl LiveLabGenerator {
    /// Mean session duration for one class. Web sessions are short
    /// bursts of browsing; conferencing calls run long.
    pub(crate) fn mean_session_secs(class: AppClass) -> f64 {
        match class {
            AppClass::Web => 240.0,
            AppClass::Streaming => 420.0,
            AppClass::Conferencing => 600.0,
        }
    }

    /// Relative diurnal activity level for an hour of day — low at
    /// night, peaks at midday and evening, like real usage logs.
    pub(crate) fn diurnal_weight(hour: f64) -> f64 {
        debug_assert!((0.0..24.0).contains(&hour));
        // Two soft bumps: 12:00 and 20:00.
        let bump = |centre: f64, width: f64| {
            let d = (hour - centre).abs().min(24.0 - (hour - centre).abs());
            (-d * d / (2.0 * width * width)).exp()
        };
        0.05 + bump(12.0, 3.0) + 1.3 * bump(20.0, 2.5)
    }

    /// Generate the chronological event stream `(time, event)`.
    pub fn events(&self) -> Vec<(Instant, WorkloadEvent)> {
        assert!(self.users > 0, "need at least one user");
        let rng = Rng::new(self.seed).derive(0x11F3);
        let horizon = self.days as f64 * 86_400.0;
        // Peak arrival rate per user (sessions/sec) scaled so the
        // diurnal average hits sessions_per_user_day.
        let avg_weight: f64 = (0..24).map(|h| Self::diurnal_weight(h as f64)).sum::<f64>() / 24.0;
        let peak_rate = self.sessions_per_user_day / 86_400.0 / avg_weight;

        let mut events: Vec<(u64, usize, WorkloadEvent)> = Vec::new();
        let mut eseq = 0usize;
        for user in 0..self.users {
            let mut urng = rng.derive(user as u64 + 1);
            // Thinned Poisson process with diurnal rate modulation.
            let mut t = 0.0f64;
            loop {
                t += urng.exponential(1.0 / peak_rate);
                if t >= horizon {
                    break;
                }
                let hour = (t % 86_400.0) / 3_600.0;
                let w = Self::diurnal_weight(hour);
                let w_max = Self::diurnal_weight(20.0);
                if !urng.chance(w / w_max) {
                    continue;
                }
                // App class by popularity: web 0, streaming 1, conf 2.
                let class = AppClass::from_index(urng.zipf(3, 1.1));
                let dur = urng
                    .exponential(Self::mean_session_secs(class) * self.session_length_scale)
                    .max(10.0);
                let start_ns = (t * 1e9) as u64;
                let end_ns = ((t + dur).min(horizon) * 1e9) as u64;
                events.push((start_ns, eseq, WorkloadEvent::Arrival(class)));
                eseq += 1;
                events.push((end_ns, eseq, WorkloadEvent::Departure(class)));
                eseq += 1;
            }
        }
        events.sort_by_key(|&(t, s, _)| (t, s));
        events
            .into_iter()
            .map(|(t, _, e)| (Instant::from_nanos(t), e))
            .collect()
    }

    /// Stream the same chronological events lazily — identical
    /// output to [`LiveLabGenerator::events`], O(users + concurrent
    /// sessions) memory instead of O(total events). This is the
    /// entry point for the 10⁵–10⁶-user populations in
    /// [`crate::scale`]; wrap a [`crate::scale::ScaledWorkload`]
    /// around the generator for flash-crowd / mass-departure regimes.
    pub fn events_streamed(&self) -> crate::scale::EventStream {
        crate::scale::ScaledWorkload::new(self.clone(), crate::scale::Regime::Steady).stream()
    }

    /// Generate the chronological traffic-matrix sequence: the mix
    /// *after* each event. Matches the paper's "as flows enter and
    /// leave the network, a new traffic matrix is recorded".
    pub fn matrices(&self) -> Vec<ClassMix> {
        let mut current = ClassMix::default();
        let mut out = Vec::new();
        for (_, ev) in self.events() {
            match ev {
                WorkloadEvent::Arrival(c) => *current.count_mut(c) += 1,
                WorkloadEvent::Departure(c) => {
                    let cnt = current.count_mut(c);
                    *cnt = cnt.saturating_sub(1);
                }
            }
            out.push(current);
        }
        out
    }

    /// Like [`LiveLabGenerator::matrices`] but dropping matrices whose
    /// total exceeds `cap` — the paper's testbed filter ("we only
    /// consider those traffic matrices where total number of flows is
    /// less than 8 (LTE) or 10 (WiFi)").
    pub fn matrices_capped(&self, cap: u32) -> Vec<ClassMix> {
        self.matrices()
            .into_iter()
            .filter(|m| m.total() <= cap)
            .collect()
    }
}

/// Turn a chronological matrix sequence into per-step arrival events:
/// for each consecutive pair, emit one event per flow added (class by
/// class). Departures are implicit (counts dropping). This is how the
/// evaluation harness replays a matrix trace through the Admittance
/// Classifier, which only makes decisions on *arrivals*.
pub fn arrivals_between(prev: &ClassMix, next: &ClassMix) -> Vec<AppClass> {
    let mut out = Vec::new();
    for class in AppClass::ALL {
        let (p, n) = (prev.count(class), next.count(class));
        for _ in p..n.max(p) {
            out.push(class);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mix_accessors() {
        let mut m = ClassMix::new(1, 2, 3);
        assert_eq!(m.total(), 6);
        assert_eq!(m.count(AppClass::Streaming), 2);
        *m.count_mut(AppClass::Web) += 1;
        assert_eq!(m.as_array(), [2, 2, 3]);
        assert_eq!(format!("{m}"), "(2,2,3)");
    }

    #[test]
    fn random_pattern_respects_caps() {
        let p = RandomPattern::new(5, 8, 1);
        let ms = p.matrices(500);
        assert_eq!(ms.len(), 500);
        for m in &ms {
            assert!(m.total() >= 1 && m.total() <= 8);
            assert!(m.web <= 5 && m.streaming <= 5 && m.conferencing <= 5);
        }
    }

    #[test]
    fn random_pattern_is_diverse() {
        let p = RandomPattern::new(5, 15, 2);
        let ms = p.matrices(300);
        let distinct: std::collections::HashSet<ClassMix> = ms.iter().copied().collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct matrices",
            distinct.len()
        );
    }

    #[test]
    fn random_pattern_deterministic() {
        let a = RandomPattern::new(5, 8, 3).matrices(50);
        let b = RandomPattern::new(5, 8, 3).matrices(50);
        assert_eq!(a, b);
    }

    #[test]
    fn livelab_events_are_chronological_and_balanced() {
        let g = LiveLabGenerator::default();
        let evs = g.events();
        assert!(!evs.is_empty());
        for w in evs.windows(2) {
            assert!(w[0].0 <= w[1].0, "events out of order");
        }
        let arrivals = evs
            .iter()
            .filter(|(_, e)| matches!(e, WorkloadEvent::Arrival(_)))
            .count();
        let departures = evs.len() - arrivals;
        assert_eq!(arrivals, departures, "each session must start and end");
    }

    #[test]
    fn livelab_matrix_count_near_paper() {
        // Paper: ≈1700 matrices from 34 users. Our default params
        // should land in the same order of magnitude.
        let g = LiveLabGenerator::default();
        let n = g.matrices().len();
        assert!(
            (1_000..3_000).contains(&n),
            "matrix count {n} far from paper's ≈1700"
        );
    }

    #[test]
    fn livelab_transitions_are_smooth() {
        // LiveLab differs from Random precisely in that consecutive
        // matrices differ by exactly one flow.
        let g = LiveLabGenerator::default();
        let ms = g.matrices();
        for w in ms.windows(2) {
            let d: i64 = AppClass::ALL
                .iter()
                .map(|&c| (w[1].count(c) as i64 - w[0].count(c) as i64).abs())
                .sum();
            assert_eq!(d, 1, "transition {} -> {} not ±1", w[0], w[1]);
        }
    }

    #[test]
    fn livelab_web_is_most_popular() {
        let g = LiveLabGenerator::default();
        let evs = g.events();
        let mut counts = [0usize; 3];
        for (_, e) in evs {
            if let WorkloadEvent::Arrival(c) = e {
                counts[c.index()] += 1;
            }
        }
        assert!(
            counts[0] > counts[1],
            "web {} <= streaming {}",
            counts[0],
            counts[1]
        );
        assert!(
            counts[1] > counts[2],
            "streaming {} <= conf {}",
            counts[1],
            counts[2]
        );
    }

    #[test]
    fn livelab_counts_never_negative_and_repeat() {
        let g = LiveLabGenerator::default();
        let ms = g.matrices();
        let distinct: std::collections::HashSet<ClassMix> = ms.iter().copied().collect();
        // Heavy repetition: far fewer distinct matrices than samples.
        assert!(
            distinct.len() * 3 < ms.len(),
            "{} distinct of {}",
            distinct.len(),
            ms.len()
        );
    }

    #[test]
    fn capped_matrices_respect_cap() {
        let g = LiveLabGenerator::default();
        let ms = g.matrices_capped(8);
        assert!(!ms.is_empty());
        assert!(ms.iter().all(|m| m.total() <= 8));
    }

    #[test]
    fn livelab_deterministic() {
        let a = LiveLabGenerator::default().matrices();
        let b = LiveLabGenerator::default().matrices();
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_weight_peaks_in_evening() {
        let night = LiveLabGenerator::diurnal_weight(3.0);
        let noon = LiveLabGenerator::diurnal_weight(12.0);
        let evening = LiveLabGenerator::diurnal_weight(20.0);
        assert!(evening > noon);
        assert!(noon > night);
    }

    #[test]
    fn arrivals_between_counts_increases_only() {
        let a = ClassMix::new(1, 2, 0);
        let b = ClassMix::new(3, 1, 1);
        let arr = arrivals_between(&a, &b);
        // +2 web, -1 streaming (ignored), +1 conferencing.
        assert_eq!(
            arr,
            vec![AppClass::Web, AppClass::Web, AppClass::Conferencing]
        );
    }

    #[test]
    fn arrivals_between_equal_is_empty() {
        let m = ClassMix::new(2, 2, 2);
        assert!(arrivals_between(&m, &m).is_empty());
    }
}
