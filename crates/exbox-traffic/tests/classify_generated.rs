//! Cross-module check: the early traffic classifier (exbox-net)
//! against flows produced by the real generators (exbox-traffic) —
//! the paper's assumption that "the class of a flow is determined"
//! by established first-packets classification must hold for our own
//! traffic, both with the hand-built default profiles and after
//! training on labelled examples.

use exbox_net::{AppClass, Duration, EarlyClassifier, FlowKey, Instant, Packet, Protocol};
use exbox_traffic::{ConferencingModel, StreamingModel, TrafficModel, WebModel};

fn generate(class: AppClass, flow_id: u32, seed: u64) -> Vec<Packet> {
    let key = FlowKey::synthetic(flow_id, flow_id, 1, Protocol::Tcp);
    let duration = Duration::from_secs(5);
    match class {
        AppClass::Web => WebModel::default().generate(key, Instant::ZERO, duration, seed),
        AppClass::Streaming => {
            StreamingModel::default().generate(key, Instant::ZERO, duration, seed)
        }
        AppClass::Conferencing => {
            ConferencingModel::default().generate(key, Instant::ZERO, duration, seed)
        }
    }
}

fn classify(clf: &mut EarlyClassifier, packets: &[Packet]) -> Option<AppClass> {
    packets.iter().find_map(|p| clf.observe(p))
}

/// In our synthetic deployment (as in real ones) each app class talks
/// to its own server endpoints; FlowKey::synthetic encodes them as
/// 192.168.1.<id>.
fn class_server(class: AppClass) -> std::net::Ipv4Addr {
    std::net::Ipv4Addr::new(192, 168, 1, class.index() as u8 + 1)
}

fn generate_to(class: AppClass, flow_id: u32, seed: u64) -> Vec<Packet> {
    let key = FlowKey::synthetic(flow_id, flow_id, class.index() as u8 + 1, Protocol::Tcp);
    let duration = Duration::from_secs(5);
    match class {
        AppClass::Web => WebModel::default().generate(key, Instant::ZERO, duration, seed),
        AppClass::Streaming => {
            StreamingModel::default().generate(key, Instant::ZERO, duration, seed)
        }
        AppClass::Conferencing => {
            ConferencingModel::default().generate(key, Instant::ZERO, duration, seed)
        }
    }
}

#[test]
fn trained_classifier_with_endpoint_hints_is_exact() {
    // Statistical centroids from labelled flows + the endpoint prior
    // a deployment gets from DNS/SNI.
    let mut examples = Vec::new();
    for class in AppClass::ALL {
        for i in 0..5u64 {
            let pkts = generate(class, 1000 + class.index() as u32 * 10 + i as u32, 77 + i);
            let tuples: Vec<_> = pkts
                .iter()
                .map(|p| (p.timestamp, p.size, p.direction))
                .collect();
            examples.push((class, tuples));
        }
    }
    let mut clf = EarlyClassifier::train(40, &examples);
    for class in AppClass::ALL {
        clf.learn_server_hint(class_server(class), class);
    }
    assert_eq!(clf.num_server_hints(), 3);

    let mut correct = 0;
    let mut total = 0;
    for class in AppClass::ALL {
        for i in 0..20u32 {
            let flow_id = 1 + class.index() as u32 * 100 + i;
            let pkts = generate_to(class, flow_id, 9_000 + i as u64);
            if let Some(got) = classify(&mut clf, &pkts) {
                total += 1;
                if got == class {
                    correct += 1;
                }
            }
        }
    }
    assert_eq!(total, 60, "every flow must receive a classification");
    assert_eq!(correct, 60, "endpoint hints must classify exactly");
}

#[test]
fn stats_only_classifier_beats_chance_without_endpoints() {
    // Without the endpoint prior, the statistical features must still
    // beat chance (33%). The honest ceiling here is modest: the first
    // packets of a video startup burst and a large page burst are
    // nearly indistinguishable without endpoint knowledge — which is
    // exactly why production classifiers use DNS/SNI priors.
    let mut examples = Vec::new();
    for class in AppClass::ALL {
        for i in 0..8u64 {
            let pkts = generate(class, 2000 + class.index() as u32 * 10 + i as u32, 177 + i);
            let tuples: Vec<_> = pkts
                .iter()
                .map(|p| (p.timestamp, p.size, p.direction))
                .collect();
            examples.push((class, tuples));
        }
    }
    let mut clf = EarlyClassifier::train(40, &examples);
    let mut correct = 0;
    let mut total = 0;
    for class in AppClass::ALL {
        for i in 0..20u32 {
            let flow_id = 3000 + class.index() as u32 * 100 + i;
            let pkts = generate(class, flow_id, 4_000 + i as u64);
            if let Some(got) = classify(&mut clf, &pkts) {
                total += 1;
                if got == class {
                    correct += 1;
                }
            }
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(
        acc >= 0.5,
        "stats-only accuracy {acc} should beat chance ({correct}/{total})"
    );
}

#[test]
fn classification_is_stable_across_seeds() {
    // Streaming flows should classify identically whatever the seed —
    // the startup burst is unmistakable.
    let mut clf = EarlyClassifier::with_default_profiles(10);
    for seed in 0..10u64 {
        let pkts = generate(AppClass::Streaming, 200 + seed as u32, seed);
        assert_eq!(classify(&mut clf, &pkts), Some(AppClass::Streaming));
    }
}
