//! Property-based tests for the traffic generators and workloads.

use exbox_net::{Duration, FlowKey, Instant, Protocol};
use exbox_traffic::{
    merge_traces, ConferencingModel, LiveLabGenerator, RandomPattern, StreamingModel, TrafficModel,
    WebModel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generator produces a time-sorted, bounded, deterministic
    /// trace whose packets all carry the requested flow key.
    #[test]
    fn generators_produce_wellformed_traces(
        secs in 1u64..20,
        seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
        let duration = Duration::from_secs(secs);
        let gen = |sd| -> Vec<exbox_net::Packet> {
            match which {
                0 => WebModel::default().generate(key, Instant::ZERO, duration, sd),
                1 => StreamingModel::default().generate(key, Instant::ZERO, duration, sd),
                _ => ConferencingModel::default().generate(key, Instant::ZERO, duration, sd),
            }
        };
        let pkts = gen(seed);
        prop_assert!(!pkts.is_empty());
        for w in pkts.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp, "unsorted trace");
        }
        for p in &pkts {
            prop_assert!(p.timestamp < Instant::ZERO + duration, "packet past end");
            prop_assert_eq!(p.flow, key);
            prop_assert!(p.size > 0 && p.size <= 1500);
        }
        prop_assert_eq!(&gen(seed), &pkts, "non-deterministic");
    }

    /// Start offsets shift traces rigidly.
    #[test]
    fn start_offset_shifts_trace(offset_ms in 0u64..10_000, seed in any::<u64>()) {
        let key = FlowKey::synthetic(2, 2, 2, Protocol::Udp);
        let d = Duration::from_secs(3);
        let base = ConferencingModel::default().generate(key, Instant::ZERO, d, seed);
        let moved = ConferencingModel::default().generate(
            key,
            Instant::from_millis(offset_ms),
            d,
            seed,
        );
        prop_assert_eq!(base.len(), moved.len());
        for (a, b) in base.iter().zip(&moved) {
            prop_assert_eq!(
                b.timestamp.as_nanos() - a.timestamp.as_nanos(),
                offset_ms * 1_000_000
            );
            prop_assert_eq!(a.size, b.size);
        }
    }

    /// merge_traces output is sorted and preserves every packet.
    #[test]
    fn merge_is_sorted_and_lossless(
        n_flows in 1usize..6,
        secs in 1u64..6,
        seed in any::<u64>(),
    ) {
        let mut traces = Vec::new();
        let mut total = 0;
        for i in 0..n_flows {
            let key = FlowKey::synthetic(i as u32 + 1, i as u32 + 1, 1, Protocol::Udp);
            let t = ConferencingModel::default().generate(
                key,
                Instant::ZERO,
                Duration::from_secs(secs),
                seed ^ i as u64,
            );
            total += t.len();
            traces.push(t);
        }
        let merged = merge_traces(traces);
        prop_assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            prop_assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    /// RandomPattern respects its caps for any parameters.
    #[test]
    fn random_pattern_caps(per_class in 1u32..20, extra in 0u32..30, n in 1usize..100, seed in any::<u64>()) {
        let max_total = per_class + extra;
        let ms = RandomPattern::new(per_class, max_total, seed).matrices(n);
        prop_assert_eq!(ms.len(), n);
        for m in &ms {
            prop_assert!(m.total() >= 1 && m.total() <= max_total);
            prop_assert!(m.web <= per_class && m.streaming <= per_class && m.conferencing <= per_class);
        }
    }

    /// LiveLab counts never go negative and arrivals equal departures
    /// for any activity level.
    #[test]
    fn livelab_balance(sessions in 1.0f64..40.0, scale in 0.5f64..4.0, seed in any::<u64>()) {
        let g = LiveLabGenerator {
            users: 10,
            days: 1,
            sessions_per_user_day: sessions,
            session_length_scale: scale,
            seed,
        };
        let evs = g.events();
        let arrivals = evs
            .iter()
            .filter(|(_, e)| matches!(e, exbox_traffic::WorkloadEvent::Arrival(_)))
            .count();
        prop_assert_eq!(arrivals * 2, evs.len());
        // Matrices never underflow (u32 saturation would show as huge).
        for m in g.matrices() {
            prop_assert!(m.total() < 10_000);
        }
    }
}
