//! Online adaptation to a changing network (paper §4.3, Fig. 11).
//!
//! ```sh
//! cargo run --release --example adaptive_capacity
//! ```
//!
//! The cell is throttled mid-run (a 200 ms / 15 Mbps shaped backhaul,
//! like `tc netem` on the gateway). ExBox's precision collapses
//! immediately after the change — its learnt region is stale — then
//! recovers as batch updates replace the stale labels, while the
//! rate-based baseline never notices that the world changed.

use exbox::prelude::*;
use exbox::sim::wifi::{Backhaul, WifiConfig};
use exbox::testbed::cell::{AppModelSet, CellLabeler, CellModel};

fn wifi_cell(backhaul: Backhaul, seed: u64) -> CellLabeler {
    CellLabeler::new(
        CellModel::WifiDes {
            cfg: WifiConfig {
                per_tx_overhead: Duration::from_micros(450),
                backhaul,
                ..WifiConfig::default()
            },
            duration: Duration::from_secs(12),
            models: AppModelSet::testbed(),
        },
        seed,
    )
}

fn main() {
    let mixes = RandomPattern::new(4, 10, 0xADA).matrices(200);
    let (before, after) = mixes.split_at(60);

    println!("phase 1: healthy network ({} matrices)...", before.len());
    let mut healthy = wifi_cell(Backhaul::transparent(), 1);
    let clean = build_samples(before, SnrPolicy::AllHigh, &mut healthy, None);

    println!("phase 2: throttled network ({} matrices)...", after.len());
    let mut throttled = wifi_cell(Backhaul::throttled_200ms(15_000_000), 2);
    let shaped = build_samples(after, SnrPolicy::AllHigh, &mut throttled, None);

    // ExBox learns the healthy region first...
    let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        batch_size: 20,
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    for s in &clean {
        exbox.on_observation(s.matrix, s.observed);
    }
    println!(
        "after healthy phase: {} ({} samples stored)\n",
        if exbox.is_bootstrapping() {
            "still bootstrapping"
        } else {
            "online"
        },
        exbox.classifier().num_samples()
    );

    // ...then faces the throttled world.
    println!(
        "{:<8} {:>10} {:>8} {:>9}   (windows of 25 throttled arrivals)",
        "fed", "precision", "recall", "accuracy"
    );
    let report = evaluate_online(&mut exbox, &shaped, 25);
    for p in &report.points {
        println!(
            "{:<8} {:>10.2} {:>8.2} {:>9.2}",
            p.fed, p.window.precision, p.window.recall, p.window.accuracy
        );
    }
    let m = report.metrics();
    println!("\nExBox overall on the throttled network: {m}");

    let mut rate = RateBased::new(20_000_000.0); // still believes the old capacity
    let rb = evaluate_online(&mut rate, &shaped, 25).metrics();
    println!("RateBased (stale capacity C):          {rb}");
}
