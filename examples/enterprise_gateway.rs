//! Enterprise gateway: a day of LiveLab-like traffic through ExBox
//! and the two industry baselines.
//!
//! ```sh
//! cargo run --release --example enterprise_gateway
//! ```
//!
//! An enterprise WiFi cell (packet-level DES calibrated to the
//! paper's laptop-AP testbed) serves 34 users whose app sessions
//! follow the LiveLab-like diurnal workload. Each controller decides
//! on every flow arrival; decisions are scored against the app-level
//! QoE ground truth. This is the paper's Fig. 7 scenario as an
//! operator would actually run it.

use exbox::prelude::*;
use exbox::sim::wifi::WifiConfig;
use exbox::testbed::cell::{AppModelSet, CellLabeler, CellModel};

fn main() {
    // Busy-hours LiveLab day on a 10-client cell.
    let workload = LiveLabGenerator {
        days: 1,
        sessions_per_user_day: 60.0,
        ..LiveLabGenerator::default()
    };
    let mixes: Vec<ClassMix> = workload.matrices_capped(10);
    println!("workload: {} traffic matrices over one day", mixes.len());

    println!("labelling ground truth on the WiFi DES (cached per matrix)...");
    let mut labeler = CellLabeler::new(
        CellModel::WifiDes {
            cfg: WifiConfig {
                per_tx_overhead: Duration::from_micros(450),
                ..WifiConfig::default()
            },
            duration: Duration::from_secs(12),
            models: AppModelSet::testbed(),
        },
        0xDA7,
    );
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    let admissible = samples.iter().filter(|s| s.truth.is_pos()).count();
    println!(
        "{} flow arrivals, {} ({:.0}%) genuinely admissible\n",
        samples.len(),
        admissible,
        100.0 * admissible as f64 / samples.len() as f64
    );

    let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        batch_size: 20,
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    let mut rate = RateBased::new(20_000_000.0);
    let mut maxc = MaxClient::new(10);

    println!(
        "{:<10} {:>9} {:>8} {:>9} {:>10}",
        "controller", "precision", "recall", "accuracy", "bootstrap"
    );
    let controllers: Vec<(&mut dyn AdmissionController, &str)> = vec![
        (&mut exbox, "ExBox"),
        (&mut rate, "RateBased"),
        (&mut maxc, "MaxClient"),
    ];
    for (c, name) in controllers {
        let report = evaluate_online(c, &samples, 50);
        let m = report.metrics();
        println!(
            "{name:<10} {:>9.3} {:>8.3} {:>9.3} {:>10}",
            m.precision, m.recall, m.accuracy, report.bootstrap_used
        );
    }
    println!(
        "\nInterpretation: precision is QoE protection (bad admits hurt\n\
         everyone already on the cell); recall is utilisation (refused\n\
         service that would have been fine). ExBox learns the cell's\n\
         multi-dimensional capacity region; the baselines track a single\n\
         number and miss it in both directions."
    );
}
