//! Hybrid WiFi + LTE network selection (paper §4.1).
//!
//! ```sh
//! cargo run --release --example network_selection
//! ```
//!
//! A gateway fronts one WiFi AP and one LTE small cell, each with its
//! own learnt Experiential Capacity Region. Arriving flows are
//! steered to the cell where the post-admission state lies deepest
//! *inside* the region (largest SVM decision value); when neither
//! region can take the flow, it is rejected outright.

use exbox::net::AppClass;
use exbox::prelude::*;

/// Train a classifier for a cell whose capacity is `cap` "airtime
/// units" with per-class weights — a compact stand-in for the learnt
/// region so the example stays fast. (The testbed harness learns the
/// same thing from simulation; see `enterprise_gateway.rs`.)
fn trained_cell(cap: f64, weights: [f64; 3], seed: u64) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
        seed,
        ..AdmittanceConfig::default()
    });
    for w in 0..6u32 {
        for s in 0..6u32 {
            for c in 0..6u32 {
                let mut m = TrafficMatrix::empty();
                for _ in 0..w {
                    m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
                }
                for _ in 0..s {
                    m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
                }
                for _ in 0..c {
                    m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::High));
                }
                let load = w as f64 * weights[0] + s as f64 * weights[1] + c as f64 * weights[2];
                let y = if load <= cap {
                    exbox::ml::Label::Pos
                } else {
                    exbox::ml::Label::Neg
                };
                ac.observe(m, y);
            }
        }
    }
    assert_eq!(ac.phase(), Phase::Online, "cell classifier failed to train");
    ac
}

fn main() {
    let mut selector = NetworkSelector::new();
    // WiFi: smaller cell, streaming-expensive (airtime anomaly).
    let wifi = selector.add_cell(NetworkCell::new(
        "wifi-ap1",
        trained_cell(8.0, [1.0, 2.5, 1.5], 1),
    ));
    // LTE: bigger cell, scheduling makes conferencing cheap.
    let lte = selector.add_cell(NetworkCell::new(
        "lte-enb1",
        trained_cell(12.0, [1.0, 2.0, 1.0], 2),
    ));

    println!("steering 20 arrivals across wifi-ap1 and lte-enb1:\n");
    let arrivals = [
        AppClass::Streaming,
        AppClass::Web,
        AppClass::Conferencing,
        AppClass::Streaming,
        AppClass::Web,
    ];
    let mut steered = [0usize; 2];
    let mut rejected = 0usize;
    for i in 0..20 {
        let class = arrivals[i % arrivals.len()];
        let kind = FlowKind::new(class, SnrLevel::High);
        match selector.select(kind) {
            Selection::Steer { cell, score } => {
                selector.commit(cell, kind);
                steered[cell] += 1;
                let name = &selector.cell(cell).name;
                println!("  arrival {i:>2} ({class:<13}) -> {name}  (depth {score:+.2})");
            }
            Selection::RejectEverywhere => {
                rejected += 1;
                println!("  arrival {i:>2} ({class:<13}) -> REJECTED (both cells full)");
            }
        }
    }
    println!(
        "\nwifi-ap1 carries {} flows, lte-enb1 carries {}, {} rejected",
        steered[wifi], steered[lte], rejected
    );
    println!(
        "final matrices: wifi {}  lte {}",
        selector.cell(wifi).matrix,
        selector.cell(lte).matrix
    );
}
