//! Replay a pcap capture through the ExBox middlebox.
//!
//! ```sh
//! cargo run --release --example pcap_gateway
//! ```
//!
//! The paper's methodology is capture-and-replay (`tcpdump` +
//! `tcpreplay`, §5.1/§6.2). This example exercises the same loop
//! in-process: generate a gateway's worth of mixed traffic, dump it
//! to a classic pcap file, read the capture back, and feed it through
//! a packet-facing [`Middlebox`] with endpoint hints — printing what
//! got classified, admitted and rejected.

use std::net::Ipv4Addr;

use exbox::net::pcap::{PcapReader, PcapWriter};
use exbox::net::{AppClass, FlowKey, Packet, Protocol};
use exbox::prelude::*;
use exbox::traffic::{merge_traces, ConferencingModel, StreamingModel, TrafficModel, WebModel};

fn main() -> std::io::Result<()> {
    // 1. Generate a mixed gateway trace: 3 web, 2 streaming, 2 calls.
    let duration = Duration::from_secs(8);
    let mut traces: Vec<Vec<Packet>> = Vec::new();
    for i in 0..3u32 {
        let key = FlowKey::synthetic(i + 1, i + 1, 1, Protocol::Tcp);
        traces.push(WebModel::default().generate(key, Instant::ZERO, duration, 10 + i as u64));
    }
    for i in 0..2u32 {
        let key = FlowKey::synthetic(i + 10, i + 10, 2, Protocol::Tcp);
        traces.push(StreamingModel::default().generate(
            key,
            Instant::ZERO,
            duration,
            20 + i as u64,
        ));
    }
    for i in 0..2u32 {
        let key = FlowKey::synthetic(i + 20, i + 20, 3, Protocol::Udp);
        traces.push(ConferencingModel::default().generate(
            key,
            Instant::ZERO,
            duration,
            30 + i as u64,
        ));
    }
    let merged = merge_traces(traces);
    println!("generated {} packets across 7 flows", merged.len());

    // 2. Dump to a classic pcap (openable in Wireshark).
    let path = std::env::temp_dir().join("exbox_gateway.pcap");
    let mut writer = PcapWriter::new(std::fs::File::create(&path)?)?;
    for p in &merged {
        writer.write_packet(p)?;
    }
    writer.finish()?;
    println!("wrote {}", path.display());

    // 3. Read it back and replay through the middlebox.
    let mut reader = PcapReader::new(std::fs::File::open(&path)?)?;
    let replayed = reader.read_all()?;
    assert_eq!(replayed.len(), merged.len());

    // Estimator: quick training sweep.
    let sweep = exbox::testbed::training::run_training_sweep(
        &[500_000, 4_000_000, 16_000_000],
        &[Duration::from_millis(20)],
        1,
        4,
    );
    let (estimator, _) = exbox::testbed::training::fit_estimator_from_sweep(
        &sweep,
        QoeEstimator::paper_thresholds(),
    );
    let mut mb = Middlebox::new(
        MiddleboxConfig::default(),
        estimator,
        AdmittanceClassifier::new(AdmittanceConfig::default()),
    );
    // Endpoint hints: each class talks to its own server (the
    // synthetic key convention: 192.168.1.<class+1>).
    for class in AppClass::ALL {
        mb.learn_server_hint(Ipv4Addr::new(192, 168, 1, class.index() as u8 + 1), class);
    }

    let mut forwarded = 0u64;
    let mut dropped = 0u64;
    for p in &replayed {
        match mb.process_packet(p, SnrLevel::High) {
            Action::Forward => forwarded += 1,
            Action::Drop => dropped += 1,
        }
    }
    println!(
        "replayed through the middlebox: {} forwarded, {} dropped, {} flows admitted, matrix {}",
        forwarded,
        dropped,
        mb.admitted_flows(),
        mb.matrix()
    );
    Ok(())
}
