//! Quickstart: learn a WiFi cell's Experiential Capacity Region and
//! make admission decisions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full ExBox pipeline on an emulated cell:
//! 1. fit the per-application IQX QoE models from a (shortened)
//!    training-device sweep,
//! 2. bootstrap the Admittance Classifier by observing a random
//!    workload on a packet-level WiFi simulation,
//! 3. make admission decisions for a few hypothetical arrivals.

use exbox::prelude::*;
use exbox::testbed::cell::{AppModelSet, CellLabeler, CellModel};
use exbox::testbed::training::{fit_estimator_from_sweep, run_training_sweep};

fn main() {
    // 1. Train the QoE estimator (paper §3.2): sweep a shaped link,
    //    record (QoS, QoE) per app, fit IQX curves.
    println!("fitting IQX models from a training sweep...");
    let sweep = run_training_sweep(
        &[500_000, 2_000_000, 8_000_000, 20_000_000],
        &[Duration::from_millis(20), Duration::from_millis(150)],
        2,
        42,
    );
    let (estimator, rmse) = fit_estimator_from_sweep(&sweep, QoeEstimator::paper_thresholds());
    for class in AppClass::ALL {
        let m = estimator.model(class).iqx;
        println!(
            "  {class:>13}: QoE = {:.2} + {:.2}*exp(-{:.2}*QoS)   (rmse {:.2})",
            m.alpha,
            m.beta,
            m.gamma,
            rmse[class.index()]
        );
    }

    // 2. Bootstrap the Admittance Classifier on a random workload
    //    labelled by the packet-level cell simulator.
    println!("\nbootstrapping the admittance classifier on the WiFi DES...");
    let mut labeler = CellLabeler::new(
        CellModel::WifiDes {
            cfg: exbox::sim::WifiConfig::default(),
            duration: Duration::from_secs(10),
            models: AppModelSet::default(),
        },
        7,
    );
    let mixes = RandomPattern::new(8, 20, 1).matrices(60);
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig::default()));
    for s in &samples {
        exbox.on_observation(s.matrix, s.observed);
    }
    println!(
        "  {} observations, phase: {:?}",
        samples.len(),
        if exbox.is_bootstrapping() {
            "Bootstrap"
        } else {
            "Online"
        }
    );

    // 3. Admission decisions for hypothetical arrivals.
    println!("\nadmission decisions:");
    for (web, stream, conf) in [(1, 1, 1), (2, 3, 1), (4, 6, 2), (8, 8, 4)] {
        let mut m = TrafficMatrix::empty();
        for _ in 0..web {
            m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
        }
        for _ in 0..stream {
            m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        for _ in 0..conf {
            m.add(FlowKind::new(AppClass::Conferencing, SnrLevel::High));
        }
        let req = FlowRequest {
            kind: FlowKind::new(AppClass::Streaming, SnrLevel::High),
            demand_bps: 2_500_000.0,
            resulting_matrix: m,
        };
        let decision = exbox.decide(&req);
        println!("  matrix ({web} web, {stream} streaming, {conf} conferencing) -> {decision:?}");
    }
}
