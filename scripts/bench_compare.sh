#!/usr/bin/env bash
# Compare a fresh `--json` bench run against the committed baseline.
#
# Usage:
#   cargo bench -p exbox-bench --bench training_latency -- --json > /tmp/t.json
#   scripts/bench_compare.sh BENCH_BASELINE.json /tmp/t.json [tolerance]
#
# The current run's document names its bench (`training_latency` /
# `admission_latency`); the matching scenario map is pulled out of the
# baseline and every shared scenario's p50/p95 is diffed. Exit is
# non-zero when any shared scenario regressed by more than the
# tolerance factor (default 2.5×, benches on shared CI boxes are
# noisy), or when an acceptance bar fails:
#  * training_latency: `rbf_2000_retrain` p50 must be at least 1.5×
#    below the baseline's `rbf_2000_cold` p50 (warm starts pay off;
#    both fits are Gram-dominated so the ratio sits near 2×
#    structurally — the sharper guarantee is the incremental bar);
#  * training_latency: `RetrainSteady/incremental` p50 must be at
#    least 2× below `RetrainSteady/warm` p50 *within the current run*
#    (the persistent kernel cache pays off on a Δ-row append);
#  * training_latency: `GramBuild/simd` p50 must not exceed
#    `GramBuild/scalar` p50 *within the current run* (the lane-blocked
#    Gram builder pays off; the engines are bit-identical by the
#    DESIGN.md §6 contract, asserted in-process by the bench);
#  * admission_latency: `AdmissionSteady/cached` p50 must be at least
#    2× below `AdmissionSteady/uncached` p50 *within the current run*
#    (the decision cache pays off);
#  * admission_latency: `AdmissionSteady/simd` p50 must be at least 2×
#    below `AdmissionSteady/scalar` p50 *within the current run* (the
#    lane kernel engine pays off — release builds only, the engines
#    are forced so this holds on any feature set);
#  * gateway_throughput: on a 4+-core runner, the 4-shard storm must
#    complete at least 2.5× faster (p50) than the 1-shard storm
#    *within the current run* (sharding pays off); skipped below 4
#    cores, where the scenarios only measure sharding overhead.
#  * gateway_throughput: on a 4+-core runner, the single-ingress
#    pipeline (`PipelineThroughput`) must push the same storm at
#    least 2.5× faster with 4 worker lanes than with 1 *within the
#    current run* (the SPSC + ordered-merge data plane scales);
#    skipped below 4 cores. Per-lane-count packets/sec headlines are
#    always reported.
#  * flow_scale: `PollSteady/wheel` p50 must be at least 5× below
#    `PollSteady/scan` p50 *within the current run* (incremental
#    polling pays off at 100k flows), and the streamed soak's peak
#    RSS (the `FlowSoak/rss_kb` pseudo-record's `n`) must stay under
#    128 MB (memory O(users + concurrent flows), not O(events)).
#
# gateway_throughput runs additionally report the batched-ingest
# packets/sec headline derived from `GatewayBatch/batched`
# (informational, no bar — the batch win depends on burst length).
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 <baseline.json> <current.json> [tolerance]" >&2
    exit 2
fi
baseline=$1
current=$2
# The exbox-obs histograms behind the benches use exponential buckets
# 2× wide, so a latency jittering across a bucket edge reports exactly
# a 2× p50/p95 change; the tolerance must exceed one bucket flip (plus
# shared-CI-box noise) to avoid false alarms.
tolerance=${3:-2.5}

bench=$(jq -r '.bench' "$current")
if ! jq -e --arg b "$bench" 'has($b)' "$baseline" > /dev/null; then
    echo "baseline $baseline has no entry for bench '$bench'" >&2
    exit 2
fi

echo "bench: $bench (tolerance ${tolerance}x)"
printf '%-28s %14s %14s %8s %s\n' scenario base_p50_ns cur_p50_ns ratio verdict

fail=0
while IFS=$'\t' read -r name reps base_p50 base_p95 cur_p50 cur_p95; do
    verdict=ok
    # Guard p50 and p95 against the same regression factor; sub-µs
    # scenarios sit below timer resolution, skip them. The p95 guard
    # only applies at >= 20 recorded reps — below that p95 is the
    # single worst rep, and one OS scheduling hiccup trips any
    # tolerance.
    if [ "$(jq -n --argjson b "$base_p50" '$b >= 1000')" = true ]; then
        if [ "$(jq -n --argjson c "$cur_p50" --argjson b "$base_p50" --argjson t "$tolerance" \
            '$c > $b * $t')" = true ]; then
            verdict=REGRESSED
            fail=1
        elif [ "$reps" -ge 20 ] && [ "$(jq -n --argjson c "$cur_p95" --argjson b "$base_p95" \
            --argjson t "$tolerance" '$c > $b * $t')" = true ]; then
            verdict=REGRESSED-p95
            fail=1
        fi
    fi
    ratio=$(jq -n --argjson c "$cur_p50" --argjson b "$base_p50" \
        'if $b > 0 then ($c / $b * 100 | round) / 100 else 0 end')
    printf '%-28s %14s %14s %8s %s\n' "$name" "$base_p50" "$cur_p50" "$ratio" "$verdict"
done < <(jq -r --arg b "$bench" --slurpfile cur "$current" '
    .[$b] as $base
    | $cur[0].scenarios
    | to_entries[]
    | select($base[.key] != null)
    | [.key, .value.reps, $base[.key].p50_ns, $base[.key].p95_ns,
       .value.p50_ns, .value.p95_ns]
    | @tsv' "$baseline")

# Warm-start acceptance bar (full training_latency runs only): a
# steady-state retrain must cost at most 1/1.5 of the baseline's cold
# 2,000-sample fit. Cold and warm fits both precompute the dense Gram
# (n ≤ gram_limit), so the structural ratio is ~2×; 1.5× leaves room
# for run-to-run SMO variance without masking a lost warm start.
if [ "$bench" = training_latency ]; then
    cold=$(jq -r '.training_latency["rbf_2000_cold"].p50_ns // empty' "$baseline")
    warm=$(jq -r '.scenarios["rbf_2000_retrain"].p50_ns // empty' "$current")
    if [ -n "$cold" ] && [ -n "$warm" ]; then
        if [ "$(jq -n --argjson w "$warm" --argjson c "$cold" '$w * 1.5 <= $c')" = true ]; then
            echo "warm-start bar: retrain p50 ${warm}ns * 1.5 <= cold baseline ${cold}ns — ok"
        else
            echo "warm-start bar FAILED: retrain p50 ${warm}ns * 1.5 > cold baseline ${cold}ns"
            fail=1
        fi
    fi
    # Incremental-retrain acceptance bar: within the same run, a
    # steady-state retrain through the persistent kernel cache (Δ-row
    # Gram append + warm SMO replay) must be at least 2× cheaper at
    # the median than the same warm retrain with a full Gram rebuild.
    incr=$(jq -r '.scenarios["RetrainSteady/incremental"].p50_ns // empty' "$current")
    warm_s=$(jq -r '.scenarios["RetrainSteady/warm"].p50_ns // empty' "$current")
    if [ -n "$incr" ] && [ -n "$warm_s" ]; then
        if [ "$(jq -n --argjson i "$incr" --argjson w "$warm_s" '$i * 2 <= $w')" = true ]; then
            echo "incremental bar: incremental p50 ${incr}ns * 2 <= warm p50 ${warm_s}ns — ok"
        else
            echo "incremental bar FAILED: incremental p50 ${incr}ns * 2 > warm p50 ${warm_s}ns"
            fail=1
        fi
    fi
    # SIMD Gram acceptance bar: the lane-blocked builder must not lose
    # to the forced scalar loop on the same dataset. The ≥2× margin of
    # the serving-side engine does not transfer here — the training
    # path never uses fast-math (the §6 bit-identity contract), so the
    # win is the lane blocking alone.
    gsimd=$(jq -r '.scenarios["GramBuild/simd"].p50_ns // empty' "$current")
    gscalar=$(jq -r '.scenarios["GramBuild/scalar"].p50_ns // empty' "$current")
    if [ -n "$gsimd" ] && [ -n "$gscalar" ]; then
        if [ "$(jq -n --argjson s "$gsimd" --argjson r "$gscalar" '$s <= $r')" = true ]; then
            echo "gram simd bar: lanes p50 ${gsimd}ns <= scalar p50 ${gscalar}ns — ok"
        else
            echo "gram simd bar FAILED: lanes p50 ${gsimd}ns > scalar p50 ${gscalar}ns"
            fail=1
        fi
    fi
fi

# Admission fast-path acceptance bar: within the same run (so machine
# speed cancels out), serving a recurring matrix from the decision
# cache must be at least 2× cheaper at the median than re-running the
# model.
if [ "$bench" = admission_latency ]; then
    cached=$(jq -r '.scenarios["AdmissionSteady/cached"].p50_ns // empty' "$current")
    uncached=$(jq -r '.scenarios["AdmissionSteady/uncached"].p50_ns // empty' "$current")
    if [ -n "$cached" ] && [ -n "$uncached" ]; then
        if [ "$(jq -n --argjson c "$cached" --argjson u "$uncached" '$c * 2 <= $u')" = true ]; then
            echo "fast-path bar: cached p50 ${cached}ns * 2 <= uncached p50 ${uncached}ns — ok"
        else
            echo "fast-path bar FAILED: cached p50 ${cached}ns * 2 > uncached p50 ${uncached}ns"
            fail=1
        fi
    fi
    # SIMD kernel-engine acceptance bar: within the same run, the lane
    # engine must evaluate the same compact model at least 2× cheaper
    # at the median than the forced scalar loop. Meaningless in debug
    # builds (`cargo bench` compiles release, the CI smoke job passes
    # `--quick` but is still release).
    simd=$(jq -r '.scenarios["AdmissionSteady/simd"].p50_ns // empty' "$current")
    scalar=$(jq -r '.scenarios["AdmissionSteady/scalar"].p50_ns // empty' "$current")
    if [ -n "$simd" ] && [ -n "$scalar" ]; then
        if [ "$(jq -n --argjson s "$simd" --argjson r "$scalar" '$s * 2 <= $r')" = true ]; then
            echo "simd bar: lanes p50 ${simd}ns * 2 <= scalar p50 ${scalar}ns — ok"
        else
            echo "simd bar FAILED: lanes p50 ${simd}ns * 2 > scalar p50 ${scalar}ns"
            fail=1
        fi
    fi
fi

# Gateway scaling acceptance bar: within the same run, 4 shards must
# serve the identical storm at least 2.5× faster than 1 shard at the
# median. Only meaningful with >= 4 cores to actually run the shards
# on; single/dual-core runners skip it.
if [ "$bench" = gateway_throughput ]; then
    cores=$(nproc 2>/dev/null || echo 1)
    one=$(jq -r '.scenarios["GatewayThroughput/1shard"].p50_ns // empty' "$current")
    four=$(jq -r '.scenarios["GatewayThroughput/4shard"].p50_ns // empty' "$current")
    if [ "$cores" -lt 4 ]; then
        echo "gateway scaling bar skipped: only ${cores} core(s) (need >= 4)"
    elif [ -n "$one" ] && [ -n "$four" ]; then
        if [ "$(jq -n --argjson f "$four" --argjson o "$one" '$f * 2.5 <= $o')" = true ]; then
            echo "gateway scaling bar: 4shard p50 ${four}ns * 2.5 <= 1shard p50 ${one}ns — ok"
        else
            echo "gateway scaling bar FAILED: 4shard p50 ${four}ns * 2.5 > 1shard p50 ${one}ns"
            fail=1
        fi
    fi
    # Batched-ingest headline: packets/sec at the median for the
    # batched and per-packet drivers of the same burst storm.
    for s in batched per-packet; do
        row=$(jq -r --arg s "GatewayBatch/$s" \
            '.scenarios[$s] | if . then "\(.n) \(.p50_ns)" else empty end' "$current")
        if [ -n "$row" ]; then
            pps=$(jq -n --argjson n "${row%% *}" --argjson p "${row##* }" \
                'if $p > 0 then ($n / $p * 1e9 | round) else 0 end')
            echo "batched-ingest headline: GatewayBatch/$s serves ${pps} packets/sec (p50)"
        fi
    done
    # Pipeline scaling acceptance bar: within the same run, the
    # single-ingress pipeline with 4 worker lanes must push the
    # identical interleaved storm at least 2.5× faster than with 1
    # lane at the median — the dispatch + SPSC + ordered-merge
    # overhead must not eat the parallelism. Skipped below 4 cores,
    # where extra lanes only add hand-off cost.
    pone=$(jq -r '.scenarios["PipelineThroughput/1core"].p50_ns // empty' "$current")
    pfour=$(jq -r '.scenarios["PipelineThroughput/4core"].p50_ns // empty' "$current")
    if [ "$cores" -lt 4 ]; then
        echo "pipeline scaling bar skipped: only ${cores} core(s) (need >= 4)"
    elif [ -n "$pone" ] && [ -n "$pfour" ]; then
        if [ "$(jq -n --argjson f "$pfour" --argjson o "$pone" '$f * 2.5 <= $o')" = true ]; then
            echo "pipeline scaling bar: 4core p50 ${pfour}ns * 2.5 <= 1core p50 ${pone}ns — ok"
        else
            echo "pipeline scaling bar FAILED: 4core p50 ${pfour}ns * 2.5 > 1core p50 ${pone}ns"
            fail=1
        fi
    fi
    # Pipeline headline: packets/sec through the single-ingress data
    # plane at each lane count present in the run.
    for c in 1 2 4 8; do
        row=$(jq -r --arg s "PipelineThroughput/${c}core" \
            '.scenarios[$s] | if . then "\(.n) \(.p50_ns)" else empty end' "$current")
        if [ -n "$row" ]; then
            pps=$(jq -n --argjson n "${row%% *}" --argjson p "${row##* }" \
                'if $p > 0 then ($n / $p * 1e9 | round) else 0 end')
            echo "pipeline headline: PipelineThroughput/${c}core serves ${pps} packets/sec (p50)"
        fi
    done
fi

# Incremental-polling acceptance bar: within the same run, a wheel
# poll of a 100k-flow cell with a ~1% dirty set must be at least 5×
# cheaper at the median than the full-arena scan of the same cell.
# The streamed soak's peak RSS (stashed in the pseudo-record's `n`)
# must stay bounded — a regression here means the 10⁵-user workload
# got materialised or per-flow state leaked.
if [ "$bench" = flow_scale ]; then
    scan=$(jq -r '.scenarios["PollSteady/scan"].p50_ns // empty' "$current")
    wheel=$(jq -r '.scenarios["PollSteady/wheel"].p50_ns // empty' "$current")
    if [ -n "$scan" ] && [ -n "$wheel" ]; then
        if [ "$(jq -n --argjson w "$wheel" --argjson s "$scan" '$w * 5 <= $s')" = true ]; then
            echo "incremental-poll bar: wheel p50 ${wheel}ns * 5 <= scan p50 ${scan}ns — ok"
        else
            echo "incremental-poll bar FAILED: wheel p50 ${wheel}ns * 5 > scan p50 ${scan}ns"
            fail=1
        fi
    fi
    rss_ceiling_kb=131072
    rss=$(jq -r '.scenarios["FlowSoak/rss_kb"].n // empty' "$current")
    if [ -n "$rss" ] && [ "$rss" -gt 0 ]; then
        if [ "$rss" -le "$rss_ceiling_kb" ]; then
            echo "soak RSS bar: peak ${rss} kB <= ${rss_ceiling_kb} kB ceiling — ok"
        else
            echo "soak RSS bar FAILED: peak ${rss} kB > ${rss_ceiling_kb} kB ceiling"
            fail=1
        fi
    fi
fi

exit $fail
