#!/usr/bin/env bash
# Run the model-checking suites under the vendored exbox-loom explorer.
#
# Usage:
#   scripts/loom_check.sh               # bounded smoke (preemption bound 2)
#   EXBOX_LOOM_EXHAUSTIVE=1 scripts/loom_check.sh   # lift the bound (nightly)
#
# Counterexample traces are dumped to $EXBOX_LOOM_TRACE_DIR (default:
# target/loom-traces at the repo root). The path is made absolute
# before the suites run because cargo test executes each test binary
# with the *crate* directory as CWD — a relative trace dir would
# scatter dumps across crates/*/.
#
# Each trace file replays the exact failing schedule:
#   EXBOX_LOOM_REPLAY="$(tail -1 trace)" RUSTFLAGS='--cfg exbox_loom' \
#     cargo test -p exbox-core --lib <failing test name>
set -euo pipefail
cd "$(dirname "$0")/.."

TRACE_DIR="${EXBOX_LOOM_TRACE_DIR:-target/loom-traces}"
mkdir -p "$TRACE_DIR"
export EXBOX_LOOM_TRACE_DIR="$(cd "$TRACE_DIR" && pwd)"

export RUSTFLAGS="${RUSTFLAGS:-} --cfg exbox_loom"

echo "== exbox-loom self-tests (explorer properties, shim differential)"
cargo test -q -p exbox-loom

echo "== gateway models (snapshot QSBR, channel, trainer drain, shard merge)"
cargo test -q -p exbox-core --lib

echo "== gateway models under --features simd (satellite: both kernel modes)"
cargo test -q -p exbox-core --lib --features simd

echo "== worker-pool models (job queue, barrier, drop drain)"
cargo test -q -p exbox-par --lib

echo "== exbox-obs under the loom cfg (atomics shim compiles + behaves)"
cargo test -q -p exbox-obs --lib

echo "loom check passed (traces, if any, under $EXBOX_LOOM_TRACE_DIR)"
