//! # ExBox — experience management middlebox for wireless networks
//!
//! A from-scratch Rust reproduction of *“ExBox: Experience Management
//! Middlebox for Wireless Networks”* (ACM CoNEXT 2016): QoE-driven
//! admission control and network selection for WiFi/LTE cells, built
//! on the notion of an **Experiential Capacity Region** — the set of
//! traffic matrices whose flows all meet their QoE thresholds — whose
//! boundary is learnt online with an SVM.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | ExCR, IQX QoE estimation, Admittance Classifier, baselines, network selection, the middlebox |
//! | [`ml`] | SMO SVM, Pegasos, logistic regression, cross-validation, metrics |
//! | [`net`] | packets, flow table, QoS meters, shaper, early traffic classification, pcap |
//! | [`sim`] | discrete-event 802.11 DCF + LTE TTI cell simulators, fluid models, app QoE |
//! | [`traffic`] | web / streaming / conferencing generators, Random + LiveLab workloads |
//! | [`testbed`] | emulated testbeds, IQX training sweeps, online evaluation harness |
//!
//! ## Quick start
//!
//! ```
//! use exbox::prelude::*;
//! use exbox::ml::Label;
//! use exbox::net::AppClass;
//!
//! // Learn a toy capacity region (<= 5 flows) and make decisions.
//! let mut exbox = ExBoxController::new(AdmittanceClassifier::new(
//!     AdmittanceConfig::default(),
//! ));
//! for n in 0..80u32 {
//!     let total = n % 9;
//!     let mut m = TrafficMatrix::empty();
//!     for _ in 0..total {
//!         m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
//!     }
//!     let label = if total <= 5 { Label::Pos } else { Label::Neg };
//!     exbox.on_observation(m, label);
//! }
//! assert!(!exbox.is_bootstrapping());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/exbox-bench` for the paper's figure reproductions.

pub use exbox_core as core;
pub use exbox_ml as ml;
pub use exbox_net as net;
pub use exbox_sim as sim;
pub use exbox_testbed as testbed;
pub use exbox_traffic as traffic;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use exbox_core::prelude::*;
    pub use exbox_ml::prelude::*;
    pub use exbox_net::{AppClass, Duration, Instant, QosSample};
    pub use exbox_testbed::{build_samples, evaluate_online, Sample, SnrPolicy};
    pub use exbox_traffic::{ClassMix, LiveLabGenerator, RandomPattern};
}
