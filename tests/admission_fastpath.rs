//! Steady-state admission fast path: the matrix-keyed decision cache
//! must make recurring decisions at least 2x faster at the median than
//! re-running the model every time, without changing a single verdict.
//!
//! This is the acceptance gate for the fast-path work; the
//! `admission_latency` bench measures the same scenario with more
//! statistical care, and `BENCH_BASELINE.json` records its numbers.

use exbox_core::prelude::*;
use exbox_ml::Label;
use exbox_net::AppClass;
use exbox_obs::MetricsRegistry;

/// Deterministic LCG for label noise (no rand dependency).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn kind(c: usize, s: usize) -> FlowKind {
    FlowKind::new(AppClass::from_index(c), SnrLevel::from_index(s))
}

/// A spread of matrices along the capacity boundary.
fn matrix(seed: u64) -> TrafficMatrix {
    let mut rng = Lcg(seed.wrapping_add(0x9e37_79b9));
    let mut m = TrafficMatrix::empty();
    let n = (rng.next() % 12) as usize;
    for _ in 0..n {
        m.add(kind((rng.next() % 3) as usize, (rng.next() % 2) as usize));
    }
    m
}

/// Train a classifier to steady state on a noisy boundary so the SVM
/// retains plenty of support vectors (an expensive uncached eval).
fn trained(cache_size: usize, reg: &MetricsRegistry) -> AdmittanceClassifier {
    let cfg = AdmittanceConfig {
        batch_size: 400, // one big online batch; no retrain during timing
        bootstrap_min_samples: 160,
        bootstrap_accuracy: 0.5, // noisy labels; accept the fit
        decision_cache_size: cache_size,
        ..AdmittanceConfig::default()
    };
    let mut ac = AdmittanceClassifier::with_registry(cfg, reg);
    let mut rng = Lcg(7);
    for i in 0..240u64 {
        let m = matrix(i);
        let truth = m.total() <= 6;
        // ~12% label noise inflates the support-vector count.
        let noisy = if rng.next() % 100 < 12 { !truth } else { truth };
        let y = if noisy { Label::Pos } else { Label::Neg };
        ac.observe(m, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "classifier must leave bootstrap");
    ac
}

fn median(mut ns: Vec<f64>) -> f64 {
    ns.sort_by(f64::total_cmp);
    ns[ns.len() / 2]
}

#[test]
fn cached_admission_p50_at_least_2x_faster() {
    let reg_cached = MetricsRegistry::new();
    let reg_uncached = MetricsRegistry::new();
    let mut cached = trained(4096, &reg_cached);
    let mut uncached = trained(0, &reg_uncached);

    // A steady-state working set of recurring matrices.
    let working_set: Vec<TrafficMatrix> = (1000..1016).map(matrix).collect();

    // Verdicts must be identical cache on or off, and the cache warm-up
    // round doubles as the correctness check.
    for m in &working_set {
        let (l_cached, v_cached) = cached.decide(m);
        let (l_uncached, v_uncached) = uncached.decide(m);
        assert_eq!(l_cached, l_uncached, "cache changed a verdict for {m}");
        assert_eq!(
            v_cached.map(f64::to_bits),
            v_uncached.map(f64::to_bits),
            "cache changed a margin for {m}"
        );
    }

    const ROUNDS: usize = 400;
    let mut ns_cached = Vec::with_capacity(ROUNDS * working_set.len());
    let mut ns_uncached = Vec::with_capacity(ROUNDS * working_set.len());
    for _ in 0..ROUNDS {
        for m in &working_set {
            let (_, dt) = exbox_obs::time_ns(|| cached.decide(m));
            ns_cached.push(dt);
            let (_, dt) = exbox_obs::time_ns(|| uncached.decide(m));
            ns_uncached.push(dt);
        }
    }

    // The cache must actually be serving: every timed decision was a
    // repeat of the warm-up set.
    let hits = reg_cached
        .snapshot()
        .counter("admittance.cache_hits")
        .unwrap_or(0);
    assert!(
        hits >= (ROUNDS * working_set.len()) as u64,
        "expected >= {} cache hits, metrics report {hits}",
        ROUNDS * working_set.len()
    );
    let uncached_hits = reg_uncached
        .snapshot()
        .counter("admittance.cache_hits")
        .unwrap_or(0);
    assert_eq!(uncached_hits, 0, "disabled cache must never hit");

    let p50_cached = median(ns_cached);
    let p50_uncached = median(ns_uncached);
    eprintln!(
        "admission p50: cached {p50_cached}ns, uncached {p50_uncached}ns \
         ({:.1}x)",
        p50_uncached / p50_cached.max(1.0)
    );
    assert!(
        p50_cached * 2.0 <= p50_uncached,
        "steady-state admission p50: cached {p50_cached}ns vs uncached \
         {p50_uncached}ns — need >= 2x improvement"
    );
}
