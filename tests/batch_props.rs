//! Split-equivalence property tests for batched packet ingest: over
//! **any** split of a packet stream into batches, `process_batch` /
//! `process_packets` must reach verdicts byte-identical to per-packet
//! driving — including run-length-cache interactions (bursty streams),
//! the deferred counter flush, and model snapshots published between
//! batches. This is the contract that lets operators turn `EXBOX_BATCH`
//! up or down without ever changing an admission decision — and, since
//! the multi-core pipeline (DESIGN.md §10), turn `EXBOX_SHARDS` up or
//! down without changing one either.

use std::collections::HashMap;
use std::sync::OnceLock;

use exbox::ml::Label;
use exbox::net::{AppClass, Direction, FlowKey, Packet, Protocol};
use exbox::prelude::*;
use exbox_obs::MetricsRegistry;
use proptest::prelude::*;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox::core::qoe::QosScale::new(1e3, 1e8),
    )
}

/// A classifier trained online to admit at most `cap` streaming flows.
/// Training is deterministic, so two calls build bit-identical models.
fn trained_classifier(cap: u32, reg: &MetricsRegistry) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::with_registry(
        AdmittanceConfig {
            batch_size: 8,
            ..AdmittanceConfig::default()
        },
        reg,
    );
    for n in 0..80u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= cap { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

/// Published snapshots for the two capacity regions used below, built
/// once (training per proptest case would dominate the suite).
fn snapshot(cap: u32) -> ModelSnapshot {
    static TIGHT: OnceLock<ModelSnapshot> = OnceLock::new();
    static ROOMY: OnceLock<ModelSnapshot> = OnceLock::new();
    let (cell, epoch) = if cap == 2 { (&TIGHT, 1) } else { (&ROOMY, 2) };
    cell.get_or_init(|| {
        let reg = MetricsRegistry::new();
        ModelSnapshot::from_classifier(epoch, &trained_classifier(cap, &reg))
    })
    .clone()
}

/// Expand `(flow_id, run_len)` runs into a packet stream with
/// monotone timestamps and correct per-flow sequence numbers. Runs
/// are what make the batch paths interesting: consecutive same-flow
/// packets exercise the run-length verdict cache, interleavings break
/// it, and short runs leave flows unclassified (< 8 packets).
fn build_stream(runs: &[(u32, usize)]) -> Vec<(Packet, SnrLevel)> {
    let mut seq: HashMap<u32, u64> = HashMap::new();
    let mut out = Vec::new();
    let mut t = 0u64;
    for &(id, len) in runs {
        let key = FlowKey::synthetic(id, id, 1, Protocol::Tcp);
        for _ in 0..len {
            let s = seq.entry(id).or_insert(0);
            out.push((
                Packet::new(
                    Instant::from_millis(2 * t),
                    1400,
                    key,
                    Direction::Downlink,
                    *s,
                ),
                SnrLevel::High,
            ));
            *s += 1;
            t += 1;
        }
    }
    out
}

/// Cut `stream` into consecutive batches whose sizes cycle through
/// `sizes` — an arbitrary split, including size-1 batches (degenerate
/// per-packet) and batches spanning many flows.
fn split<'a>(stream: &'a [(Packet, SnrLevel)], sizes: &[usize]) -> Vec<&'a [(Packet, SnrLevel)]> {
    let mut out = Vec::new();
    let (mut i, mut k) = (0, 0);
    while i < stream.len() {
        let n = sizes[k % sizes.len()].clamp(1, stream.len() - i);
        out.push(&stream[i..i + n]);
        i += n;
        k += 1;
    }
    out
}

fn runs_strategy() -> impl Strategy<Value = Vec<(u32, usize)>> {
    prop::collection::vec((1u32..6, 1usize..12), 1..40)
}

fn sizes_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..17, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Middlebox::process_batch` over any split == per-packet
    /// `process_packet`, in verdicts, occupancy, admissions and the
    /// (batch-deferred) counters.
    #[test]
    fn middlebox_batch_equals_per_packet_for_any_split(
        runs in runs_strategy(),
        sizes in sizes_strategy(),
    ) {
        let stream = build_stream(&runs);
        let mk = || {
            let reg = MetricsRegistry::new();
            let mut mb = Middlebox::with_registry(
                MiddleboxConfig::default(),
                estimator(),
                trained_classifier(2, &reg),
                &reg,
            );
            mb.set_fault_plan(FaultPlan::disabled());
            (mb, reg)
        };
        let (mut reference, ref_reg) = mk();
        let expect: Vec<Action> = stream
            .iter()
            .map(|(p, snr)| reference.process_packet(p, *snr))
            .collect();
        let (mut subject, sub_reg) = mk();
        let mut got = Vec::with_capacity(stream.len());
        for chunk in split(&stream, &sizes) {
            got.extend(subject.process_batch(chunk));
        }
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(subject.matrix(), reference.matrix());
        prop_assert_eq!(subject.admitted_flows(), reference.admitted_flows());
        // The batch path defers counter updates to the end of each
        // batch; once flushed they must agree exactly.
        let (r, s) = (ref_reg.snapshot(), sub_reg.snapshot());
        for name in [
            "middlebox.packets",
            "middlebox.admits",
            "middlebox.rejects",
            "middlebox.drops_rejected",
        ] {
            prop_assert_eq!(r.counter(name), s.counter(name), "counter {}", name);
        }
    }

    /// `ConcurrentGateway::process_packets` over any split == per-packet
    /// `process_packet`, for every supported shard count (maximal
    /// same-shard runs must preserve global arrival order).
    #[test]
    fn gateway_batch_equals_per_packet_for_any_split(
        runs in runs_strategy(),
        sizes in sizes_strategy(),
        shards in 1usize..5,
    ) {
        let stream = build_stream(&runs);
        let cfg = GatewayConfig { shards, ..GatewayConfig::default() };
        let mut reference =
            ConcurrentGateway::serving_only(cfg.clone(), estimator(), snapshot(2));
        let expect: Vec<Action> = stream
            .iter()
            .map(|(p, snr)| reference.process_packet(p, *snr))
            .collect();
        let mut subject = ConcurrentGateway::serving_only(cfg, estimator(), snapshot(2));
        let mut got = Vec::with_capacity(stream.len());
        for chunk in split(&stream, &sizes) {
            got.extend(subject.process_packets(chunk));
        }
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(subject.matrix(), reference.matrix());
        prop_assert_eq!(subject.admitted_flows(), reference.admitted_flows());
    }

    /// A model published part-way through the stream: the batched run
    /// publishes at a batch boundary, the per-packet reference at the
    /// same packet index — verdicts must still match exactly. (The
    /// tight → roomy region swap changes real verdicts once three or
    /// more flows contend, so this exercises decisions under both
    /// snapshots plus the decision-cache interaction across the swap.)
    #[test]
    fn mid_stream_publication_keeps_split_equivalence(
        runs in runs_strategy(),
        sizes in sizes_strategy(),
        publish_pick in 0usize..64,
    ) {
        let stream = build_stream(&runs);
        let cfg = GatewayConfig { shards: 1, ..GatewayConfig::default() };
        let batches = split(&stream, &sizes);
        // Publish before batch `pi` — possibly before the first or
        // after the last — at stream offset `k`.
        let pi = publish_pick % (batches.len() + 1);
        let k: usize = batches[..pi].iter().map(|b| b.len()).sum();

        let mut reference =
            ConcurrentGateway::serving_only(cfg.clone(), estimator(), snapshot(2));
        let ref_cell = reference.snapshot_cell();
        let mut expect = Vec::with_capacity(stream.len());
        for (i, (p, snr)) in stream.iter().enumerate() {
            if i == k {
                ref_cell.publish(snapshot(4));
            }
            expect.push(reference.process_packet(p, *snr));
        }
        if k == stream.len() {
            ref_cell.publish(snapshot(4));
        }

        let mut subject = ConcurrentGateway::serving_only(cfg, estimator(), snapshot(2));
        let sub_cell = subject.snapshot_cell();
        let mut got = Vec::with_capacity(stream.len());
        for (ci, chunk) in batches.iter().enumerate() {
            if ci == pi {
                sub_cell.publish(snapshot(4));
            }
            got.extend(subject.process_packets(chunk));
        }
        if pi == batches.len() {
            sub_cell.publish(snapshot(4));
        }

        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(subject.matrix(), reference.matrix());
        prop_assert_eq!(subject.admitted_flows(), reference.admitted_flows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The multi-core pipeline over any split == per-packet sequential
    /// driving, in verdicts (global ingress order), matrix occupancy
    /// and admissions — for every supported worker count, with
    /// verdicts drained opportunistically mid-stream. This is the
    /// DESIGN.md §10 determinism contract: `EXBOX_SHARDS` may change
    /// the core count, never a verdict.
    #[test]
    fn pipeline_equals_sequential_for_any_split(
        runs in runs_strategy(),
        sizes in sizes_strategy(),
        shards in 1usize..5,
    ) {
        let stream = build_stream(&runs);
        let cfg = GatewayConfig { shards, ..GatewayConfig::default() };
        let mut reference =
            ConcurrentGateway::serving_only(cfg.clone(), estimator(), snapshot(2));
        let expect: Vec<Action> = stream
            .iter()
            .map(|(p, snr)| reference.process_packet(p, *snr))
            .collect();

        let mut subject = ConcurrentGateway::serving_only(cfg, estimator(), snapshot(2));
        let mut pipe = subject.start_pipeline();
        let mut got = Vec::with_capacity(stream.len());
        for chunk in split(&stream, &sizes) {
            pipe.ingest(chunk);
            // Opportunistic mid-stream drain: whatever is ready must
            // already be in ingress order.
            pipe.drain_verdicts(&mut got);
        }
        got.extend(subject.finish_pipeline(pipe));
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(subject.matrix(), reference.matrix());
        prop_assert_eq!(subject.admitted_flows(), reference.admitted_flows());
    }

    /// A model republished part-way through a pipeline run: the
    /// pipeline quiesces (`flush`), publishes, and keeps ingesting; the
    /// per-packet reference publishes at the same stream offset.
    /// Verdicts, matrix and admissions must still match exactly, under
    /// every worker count — republication is only verdict-deterministic
    /// at a flush point, which is exactly how the trainer-facing driver
    /// uses it.
    #[test]
    fn pipeline_republication_at_flush_points_keeps_equivalence(
        runs in runs_strategy(),
        sizes in sizes_strategy(),
        shards in 1usize..5,
        publish_pick in 0usize..64,
    ) {
        let stream = build_stream(&runs);
        let cfg = GatewayConfig { shards, ..GatewayConfig::default() };
        let batches = split(&stream, &sizes);
        let pi = publish_pick % (batches.len() + 1);
        let k: usize = batches[..pi].iter().map(|b| b.len()).sum();

        let mut reference =
            ConcurrentGateway::serving_only(cfg.clone(), estimator(), snapshot(2));
        let ref_cell = reference.snapshot_cell();
        let mut expect = Vec::with_capacity(stream.len());
        for (i, (p, snr)) in stream.iter().enumerate() {
            if i == k {
                ref_cell.publish(snapshot(4));
            }
            expect.push(reference.process_packet(p, *snr));
        }
        if k == stream.len() {
            ref_cell.publish(snapshot(4));
        }

        let mut subject = ConcurrentGateway::serving_only(cfg, estimator(), snapshot(2));
        let sub_cell = subject.snapshot_cell();
        let mut pipe = subject.start_pipeline();
        let mut got = Vec::with_capacity(stream.len());
        for (ci, chunk) in batches.iter().enumerate() {
            if ci == pi {
                pipe.flush(&mut got);
                sub_cell.publish(snapshot(4));
            }
            pipe.ingest(chunk);
            pipe.drain_verdicts(&mut got);
        }
        got.extend(subject.finish_pipeline(pipe));
        if pi == batches.len() {
            sub_cell.publish(snapshot(4));
        }

        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(subject.matrix(), reference.matrix());
        prop_assert_eq!(subject.admitted_flows(), reference.admitted_flows());
    }
}
