//! Crash-safety end-to-end tests: kill-and-restore of a live gateway,
//! corrupt checkpoints degrading to the occupancy fallback (not
//! crashing, not blindly admitting), and a multi-seed fault-injection
//! sweep over the whole pipeline.
//!
//! Every test here is robust to `EXBOX_FAULTS` carrying the
//! retrain/poll fault kinds (CI re-runs this suite with them armed);
//! checkpoint-read faults are always set explicitly so the expected
//! outcome is deterministic.

use std::path::PathBuf;

use exbox::core::qoe::QosScale;
use exbox::ml::Label;
use exbox::net::{AppClass, Direction, FlowKey, Packet, Protocol};
use exbox::prelude::*;
use exbox_obs::MetricsRegistry;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        QosScale::new(1e3, 1e8),
    )
}

fn acfg() -> AdmittanceConfig {
    AdmittanceConfig {
        batch_size: 8,
        ..AdmittanceConfig::default()
    }
}

/// A classifier trained online to admit at most two streaming flows.
fn trained_classifier(reg: &MetricsRegistry) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::with_registry(acfg(), reg);
    for n in 0..80u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

fn streaming_pkts(key: FlowKey, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new(
                Instant::from_millis(2 * i as u64),
                1400,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect()
}

/// Drive `flows` distinct streaming flows to a classified decision
/// each; returns the last action per flow.
fn drive_flows(m: &mut Middlebox, first_id: u32, flows: u32) -> Vec<Action> {
    (0..flows)
        .map(|i| {
            let key = FlowKey::synthetic(first_id + i, first_id + i, 1, Protocol::Tcp);
            streaming_pkts(key, 12)
                .iter()
                .map(|p| m.process_packet(p, SnrLevel::High))
                .last()
                .unwrap()
        })
        .collect()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exbox-crash-safety-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Kill-and-restore: a gateway checkpointed mid-operation comes back
/// online (no re-bootstrap) and reaches the same verdicts on the same
/// traffic as the original.
#[test]
fn gateway_kill_and_restore_resumes_where_it_left_off() {
    let reg = MetricsRegistry::new();
    let mut gw = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator(),
        trained_classifier(&reg),
        &reg,
    );
    // Decisions must not depend on whatever EXBOX_FAULTS is set to.
    gw.set_fault_plan(FaultPlan::disabled());

    let before = drive_flows(&mut gw, 1, 4);
    let path = temp_path("gateway.ckpt");
    gw.checkpoint_to_path(&path).expect("checkpoint must write");
    drop(gw); // the crash

    let reg2 = MetricsRegistry::new();
    let mut restored = Middlebox::restore_from_path_with_registry(
        MiddleboxConfig::default(),
        acfg(),
        &path,
        &reg2,
    )
    .expect("restore must succeed");
    restored.set_fault_plan(FaultPlan::disabled());

    assert_eq!(
        restored.admittance().phase(),
        Phase::Online,
        "no re-bootstrap"
    );
    assert!(!restored.is_degraded());
    assert_eq!(reg2.snapshot().counter("recovery.restores").unwrap(), 1);
    // Same traffic, same verdicts: 2 admits then 2 rejects against the
    // <= 2 streaming-flow region.
    let after = drive_flows(&mut restored, 1, 4);
    assert_eq!(after, before);
    assert_eq!(restored.admitted_flows(), 2);

    std::fs::remove_file(&path).ok();
}

/// A corrupt checkpoint is rejected with an error — and the gateway
/// keeps serving through the occupancy fallback instead of dying or
/// admitting everything, observable in `recovery.*` metrics.
#[test]
fn corrupt_checkpoint_degrades_but_keeps_serving() {
    let reg = MetricsRegistry::new();
    let gw = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator(),
        trained_classifier(&reg),
        &reg,
    );
    let path = temp_path("corrupt.ckpt");
    gw.checkpoint_to_path(&path).unwrap();
    drop(gw);

    // Flip one byte in the middle of the file (bit rot / torn sector).
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let reg2 = MetricsRegistry::new();
    let (mut degraded, err) = Middlebox::recover_from_path(
        MiddleboxConfig {
            fallback_max_flows: 2,
            ..MiddleboxConfig::default()
        },
        acfg(),
        estimator(),
        &path,
        &reg2,
    );
    assert!(err.is_some(), "corruption must surface an error");
    assert!(degraded.is_recovering());
    assert!(degraded.is_degraded());
    assert_eq!(
        reg2.snapshot().counter("recovery.restores").unwrap_or(0),
        0,
        "a rejected checkpoint must not count as a restore"
    );

    // Still serving: the MaxClient fallback admits up to its cap and
    // rejects beyond it — no panic, no admit-everything bootstrap.
    let actions = drive_flows(&mut degraded, 10, 4);
    assert_eq!(
        actions,
        vec![Action::Forward, Action::Forward, Action::Drop, Action::Drop],
        "fallback must cap occupancy at 2"
    );
    let fallbacks = reg2
        .snapshot()
        .counter("recovery.fallback_decisions")
        .unwrap();
    assert!(
        fallbacks >= 4,
        "expected >= 4 fallback decisions, got {fallbacks}"
    );
    assert!(degraded
        .decision_log()
        .snapshot()
        .iter()
        .all(|ev| ev.reason == DecisionReason::DegradedFallback));

    std::fs::remove_file(&path).ok();
}

/// The full fault matrix, many seeds: retrain failures,
/// non-convergence, poll errors and checkpoint read faults all firing
/// together must never panic, and every mangled checkpoint load must
/// come back as a clean error (or a clean success when the mangle
/// happened to be harmless — never a wrong model).
#[test]
fn full_fault_sweep_never_panics() {
    let base_reg = MetricsRegistry::new();
    let mut seed_ckpt = Vec::new();
    save_checkpoint(&trained_classifier(&base_reg), &estimator(), &mut seed_ckpt).unwrap();

    let mut total_injected = 0u64;
    for seed in 1..=10u64 {
        let reg = MetricsRegistry::new();
        let (classifier, est) = load_checkpoint(&seed_ckpt[..], acfg(), &reg).unwrap();
        let mut gw = Middlebox::with_registry(MiddleboxConfig::default(), est, classifier, &reg);
        let plan = FaultPlan::with_registry(
            &[
                (FaultKind::RetrainFail, 0.5),
                (FaultKind::RetrainNonConverge, 0.4),
                (FaultKind::CheckpointCorrupt, 0.6),
                (FaultKind::CheckpointTruncate, 0.4),
                (FaultKind::PollError, 0.5),
            ],
            seed,
            &reg,
        );
        gw.set_fault_plan(plan.clone());

        for round in 0..12u32 {
            let key = FlowKey::synthetic(100 + round, round, 1, Protocol::Tcp);
            for p in streaming_pkts(key, 12) {
                gw.process_packet(&p, SnrLevel::High);
            }
            for i in 0..20u64 {
                gw.record_delivery(
                    &key,
                    Instant::from_millis(i * 10),
                    Instant::from_millis(i * 10 + 5),
                    1400,
                );
            }
            gw.poll(Instant::from_secs(3 * (round as u64 + 1)));

            // Checkpoint under fire: the write always succeeds; a
            // mangled read must fail cleanly or load the real thing.
            let mut buf = Vec::new();
            gw.checkpoint(&mut buf).unwrap();
            let mut mangled = buf.clone();
            plan.mangle_checkpoint(&mut mangled);
            let probe = MetricsRegistry::new();
            match load_checkpoint(&mangled[..], acfg(), &probe) {
                Ok((loaded, _)) => {
                    assert_eq!(mangled, buf, "a changed stream must never load");
                    assert_eq!(loaded.num_samples(), gw.admittance().num_samples());
                }
                Err(_) => assert_ne!(mangled, buf, "pristine stream must load"),
            }
        }
        total_injected += plan.injected();
    }
    assert!(total_injected > 0, "the sweep must actually inject faults");
}

/// Concurrent gateway: retrain-failure injection fires on the
/// **background trainer**, not the serving path — the shards keep
/// serving the last good snapshot (no new epoch is published, no
/// degraded fallback engages) while every retrain attempt fails.
#[test]
fn concurrent_retrain_faults_hit_trainer_not_serving_path() {
    let reg = MetricsRegistry::new();
    let classifier = trained_classifier(&reg);
    let plan = FaultPlan::with_registry(&[(FaultKind::RetrainFail, 1.0)], 7, &reg);
    let cfg = exbox::core::gateway::GatewayConfig {
        shards: 2,
        ..Default::default()
    };
    let mut gw = exbox::core::gateway::ConcurrentGateway::with_fault_plan(
        cfg,
        estimator(),
        classifier,
        plan,
    );

    // Feed enough labelled batches to trigger several retrain attempts
    // (batch_size 8); every one of them fails on the trainer thread.
    for n in 0..64u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 {
            exbox::ml::Label::Pos
        } else {
            exbox::ml::Label::Neg
        };
        assert!(gw.inject_observation(mat, y));
    }
    assert!(gw.flush_trainer());

    let failures = reg
        .snapshot()
        .counter("recovery.retrain_failures")
        .unwrap_or(0);
    assert!(failures > 0, "retrain faults must fire on the trainer");
    assert_eq!(
        gw.publish_count(),
        0,
        "a failed retrain must not publish a new snapshot"
    );
    assert!(
        !gw.is_degraded(),
        "the pre-fault model must keep serving (not the fallback)"
    );
    // The learnt <= 2 streaming region still decides admissions.
    let verdicts: Vec<Action> = (1..=4u32)
        .map(|id| {
            let key = FlowKey::synthetic(id, id, 1, Protocol::Tcp);
            streaming_pkts(key, 12)
                .iter()
                .map(|p| gw.process_packet(p, SnrLevel::High))
                .last()
                .unwrap()
        })
        .collect();
    assert_eq!(
        verdicts,
        vec![Action::Forward, Action::Forward, Action::Drop, Action::Drop]
    );
    let merged = gw.merged_metrics();
    assert_eq!(
        merged.counter("recovery.fallback_decisions").unwrap_or(0),
        0,
        "no shard may have fallen back to the occupancy baseline"
    );
}

/// Concurrent gateway: a failed restore degrades every shard to the
/// occupancy fallback, and the gateway **heals through the trainer** —
/// once re-learnt state is published, the shards flip back to
/// region-based admission without any serving-path intervention.
#[test]
fn concurrent_recovery_heals_through_background_trainer() {
    let reg = MetricsRegistry::new();
    let cfg = exbox::core::gateway::GatewayConfig {
        shards: 2,
        middlebox: MiddleboxConfig {
            fallback_max_flows: 2,
            ..MiddleboxConfig::default()
        },
        ..Default::default()
    };
    let missing = temp_path("never-written.ckpt");
    std::fs::remove_file(&missing).ok();
    let (mut gw, err) = exbox::core::gateway::ConcurrentGateway::recover_from_path(
        cfg,
        acfg(),
        estimator(),
        &missing,
        &reg,
    );
    assert!(err.is_some(), "missing checkpoint must surface an error");
    assert!(gw.is_recovering());
    assert!(gw.is_degraded());

    // Degraded serving: the occupancy fallback caps at 2 flows on
    // every shard (shared matrix, so the cap is global).
    let verdicts: Vec<Action> = (10..=13u32)
        .map(|id| {
            let key = FlowKey::synthetic(id, id, 1, Protocol::Tcp);
            streaming_pkts(key, 12)
                .iter()
                .map(|p| gw.process_packet(p, SnrLevel::High))
                .last()
                .unwrap()
        })
        .collect();
    assert_eq!(
        verdicts,
        vec![Action::Forward, Action::Forward, Action::Drop, Action::Drop],
        "fallback must cap global occupancy at 2"
    );
    let merged = gw.merged_metrics();
    assert!(merged.counter("recovery.fallback_decisions").unwrap_or(0) >= 4);

    // Heal: feed labelled observations until the trainer publishes a
    // model. Generous cap so ambient EXBOX_FAULTS retrain failures
    // only delay the heal, never flake the test.
    'heal: for _round in 0..200u32 {
        for n in 0..8u32 {
            let total = n % 8;
            let mut mat = TrafficMatrix::empty();
            for _ in 0..total {
                mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
            }
            let y = if total <= 2 {
                exbox::ml::Label::Pos
            } else {
                exbox::ml::Label::Neg
            };
            assert!(gw.inject_observation(mat, y));
        }
        assert!(gw.flush_trainer());
        if !gw.is_recovering() {
            break 'heal;
        }
    }
    assert!(!gw.is_recovering(), "trainer must heal the gateway");
    assert!(!gw.is_degraded());
    assert!(gw.publish_count() >= 1);
    // Fresh arrivals are decided by the re-learnt region again: the
    // fallback counter must not move any further.
    let fallbacks_at_heal = gw
        .merged_metrics()
        .counter("recovery.fallback_decisions")
        .unwrap_or(0);
    let key = FlowKey::synthetic(99, 99, 1, Protocol::Tcp);
    for p in streaming_pkts(key, 12) {
        gw.process_packet(&p, SnrLevel::High);
    }
    assert_eq!(
        gw.merged_metrics()
            .counter("recovery.fallback_decisions")
            .unwrap_or(0),
        fallbacks_at_heal,
        "post-heal decisions must come from the model, not the fallback"
    );
}

/// Smoke: a default gateway (whatever `EXBOX_FAULTS` says) serves a
/// mixed workload with consistent bookkeeping and no panics.
#[test]
fn default_gateway_serves_under_ambient_faults() {
    let reg = MetricsRegistry::new();
    let mut gw = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator(),
        AdmittanceClassifier::with_registry(acfg(), &reg),
        &reg,
    );
    let mut fed = 0u64;
    for round in 0..8u32 {
        let key = FlowKey::synthetic(round + 1, round + 1, 1, Protocol::Tcp);
        for p in streaming_pkts(key, 12) {
            gw.process_packet(&p, SnrLevel::High);
            fed += 1;
        }
        for i in 0..20u64 {
            gw.record_delivery(
                &key,
                Instant::from_millis(i * 10),
                Instant::from_millis(i * 10 + 5),
                1400,
            );
        }
        gw.poll(Instant::from_secs(3 * (round as u64 + 1)));
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("middlebox.packets").unwrap(), fed);
    let admits = snap.counter("middlebox.admits").unwrap_or(0);
    let rejects = snap.counter("middlebox.rejects").unwrap_or(0);
    assert!(admits + rejects > 0, "flows must reach decisions");
    // No departures in this workload, so the standing flow count is
    // exactly the admissions minus later poll revocations.
    let revokes = snap.counter("middlebox.revokes").unwrap_or(0);
    assert_eq!(gw.admitted_flows() as u64, admits - revokes);
}
