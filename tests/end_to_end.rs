//! Cross-crate integration tests: the full ExBox pipeline from
//! traffic generation through simulation, QoE estimation, learning
//! and admission decisions.

use exbox::ml::Label;
use exbox::net::AppClass;
use exbox::prelude::*;
use exbox::sim::wifi::WifiConfig;
use exbox::testbed::cell::{AppModelSet, CellLabeler, CellModel};
use exbox::testbed::training::{fit_estimator_from_sweep, run_training_sweep};

fn wifi_labeler(seed: u64) -> CellLabeler {
    CellLabeler::new(
        CellModel::WifiDes {
            cfg: WifiConfig::default(),
            duration: Duration::from_secs(10),
            models: AppModelSet::default(),
        },
        seed,
    )
}

/// The headline loop: random workload → DES ground truth → online
/// learning → ExBox beats both baselines on accuracy.
#[test]
fn exbox_beats_baselines_end_to_end() {
    let mixes = RandomPattern::new(6, 16, 0xE2E).matrices(120);
    let mut labeler = wifi_labeler(1);
    let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
    assert!(samples.len() > 150, "workload too small: {}", samples.len());

    let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
        bootstrap_min_samples: 50,
        ..AdmittanceConfig::default()
    }));
    let mut rate = RateBased::new(25_000_000.0);
    let mut maxc = MaxClient::new(10);

    let ex = evaluate_online(&mut exbox, &samples, 50).metrics();
    let rb = evaluate_online(&mut rate, &samples, 50).metrics();
    let mc = evaluate_online(&mut maxc, &samples, 50).metrics();

    assert!(ex.accuracy > 0.8, "ExBox accuracy {}", ex.accuracy);
    assert!(
        ex.accuracy > rb.accuracy && ex.accuracy > mc.accuracy,
        "ExBox {} must beat RateBased {} and MaxClient {}",
        ex.accuracy,
        rb.accuracy,
        mc.accuracy
    );
}

/// The estimation pipeline: IQX models fitted on a shaped-link sweep
/// agree with app-level ground truth on clearly-good and clearly-bad
/// matrices.
#[test]
fn iqx_estimates_agree_with_ground_truth_at_extremes() {
    let sweep = run_training_sweep(
        &[250_000, 1_000_000, 4_000_000, 12_000_000],
        &[Duration::from_millis(20), Duration::from_millis(150)],
        2,
        9,
    );
    let (estimator, _) = fit_estimator_from_sweep(&sweep, QoeEstimator::paper_thresholds());

    let mut labeler = wifi_labeler(2);
    let light = {
        let mut m = TrafficMatrix::empty();
        m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
        m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        m
    };
    let heavy = {
        let mut m = TrafficMatrix::empty();
        for _ in 0..10 {
            m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
            m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
        }
        m
    };
    let light_out = labeler.label(&light);
    let heavy_out = labeler.label(&heavy);
    assert_eq!(light_out.truth, Label::Pos);
    assert_eq!(heavy_out.truth, Label::Neg);
    assert_eq!(light_out.estimated_label(&estimator), Label::Pos);
    assert_eq!(heavy_out.estimated_label(&estimator), Label::Neg);
}

/// SNR diversity shrinks the learnt region: a workload of low-SNR
/// clients saturates at smaller matrices than the same workload at
/// high SNR (the Fig. 3 phenomenon driving the k·r matrix encoding).
#[test]
fn low_snr_workload_has_smaller_capacity() {
    let mut labeler = wifi_labeler(3);
    let cap = |snr: SnrLevel, labeler: &mut CellLabeler| -> u32 {
        let mut last_pos = 0;
        for n in 1..=12 {
            let mut m = TrafficMatrix::empty();
            for _ in 0..n {
                m.add(FlowKind::new(AppClass::Streaming, snr));
            }
            if labeler.label(&m).truth == Label::Pos {
                last_pos = n;
            }
        }
        last_pos
    };
    let high = cap(SnrLevel::High, &mut labeler);
    let low = cap(SnrLevel::Low, &mut labeler);
    assert!(
        low < high,
        "low-SNR streaming capacity {low} should be below high-SNR {high}"
    );
    assert!(high >= 3, "high-SNR cell should hold several streams");
}

/// The packet-facing middlebox drives the same learning machinery:
/// classify → admit → meter → poll → observe.
#[test]
fn middlebox_pipeline_learns_from_polls() {
    use exbox::net::{Direction, FlowKey, Packet, Protocol};

    let sweep = run_training_sweep(
        &[500_000, 4_000_000, 16_000_000],
        &[Duration::from_millis(20)],
        1,
        4,
    );
    let (estimator, _) = fit_estimator_from_sweep(&sweep, QoeEstimator::paper_thresholds());
    let mut mb = Middlebox::new(
        MiddleboxConfig::default(),
        estimator,
        AdmittanceClassifier::new(AdmittanceConfig::default()),
    );

    // A streaming-shaped flow arrives and is admitted (bootstrap).
    let key = FlowKey::synthetic(1, 1, 1, Protocol::Tcp);
    for i in 0..10u64 {
        let pkt = Packet::new(
            Instant::from_millis(2 * i),
            1400,
            key,
            Direction::Downlink,
            i,
        );
        assert_eq!(mb.process_packet(&pkt, SnrLevel::High), Action::Forward);
    }
    assert_eq!(mb.admitted_flows(), 1);

    // Healthy delivery reports, then a poll: one observation lands.
    for i in 0..100u64 {
        mb.record_delivery(
            &key,
            Instant::from_millis(i * 10),
            Instant::from_millis(i * 10 + 4),
            1400,
        );
    }
    let before = mb.admittance().num_observations();
    mb.poll(Instant::from_secs(3));
    assert_eq!(mb.admittance().num_observations(), before + 1);
}

/// Determinism across the whole pipeline: identical seeds give
/// identical evaluation reports.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mixes = RandomPattern::new(5, 12, 7).matrices(60);
        let mut labeler = wifi_labeler(11);
        let samples = build_samples(&mixes, SnrPolicy::AllHigh, &mut labeler, None);
        let mut exbox = ExBoxController::new(AdmittanceClassifier::new(AdmittanceConfig {
            bootstrap_min_samples: 40,
            ..AdmittanceConfig::default()
        }));
        let report = evaluate_online(&mut exbox, &samples, 20);
        (
            report.bootstrap_used,
            report.confusion,
            report.metrics().accuracy,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// §4.3 end to end: a client walks to the cell edge mid-run; the
/// middlebox's periodic poll sees the QoS collapse, feeds a negative
/// observation, re-learns, and revokes flows.
#[test]
fn middlebox_revokes_after_mobility_degrades_qoe() {
    use exbox::core::PollVerdict;
    use exbox::net::{Direction, FlowKey, Packet, Protocol};

    // Estimator from a quick sweep.
    let sweep = run_training_sweep(
        &[500_000, 4_000_000, 16_000_000],
        &[Duration::from_millis(20)],
        1,
        4,
    );
    let (estimator, _) = fit_estimator_from_sweep(&sweep, QoeEstimator::paper_thresholds());

    // Admittance classifier pre-trained on a simple region: one flow
    // is fine, and the matrix label follows observed QoE.
    // The monotone guard makes relabelled matrices take effect
    // immediately (the SVM alone can be outvoted by its stale
    // neighbours until several batches re-learn the area).
    let mut ac = AdmittanceClassifier::new(AdmittanceConfig {
        batch_size: 1, // retrain on every observation for the test
        monotone_guard: true,
        ..AdmittanceConfig::default()
    });
    for w in 0..5u32 {
        for st in 0..5u32 {
            for _rep in 0..3 {
                let mut m = TrafficMatrix::empty();
                for _ in 0..w {
                    m.add(FlowKind::new(AppClass::Web, SnrLevel::High));
                }
                for _ in 0..st {
                    m.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
                }
                let y = if w + st <= 4 {
                    exbox::ml::Label::Pos
                } else {
                    exbox::ml::Label::Neg
                };
                ac.observe(m, y);
            }
        }
    }
    let mut mb = Middlebox::new(MiddleboxConfig::default(), estimator, ac);

    // Admit one streaming flow while the client is healthy.
    let key = FlowKey::synthetic(1, 1, 2, Protocol::Tcp);
    for i in 0..10u64 {
        let pkt = Packet::new(
            Instant::from_millis(2 * i),
            1400,
            key,
            Direction::Downlink,
            i,
        );
        mb.process_packet(&pkt, SnrLevel::High);
    }
    assert_eq!(mb.admitted_flows(), 1);

    // Phase 1: healthy QoS -> poll keeps the flow.
    for i in 0..100u64 {
        mb.record_delivery(
            &key,
            Instant::from_millis(i * 10),
            Instant::from_millis(i * 10 + 4),
            1400,
        );
    }
    let verdicts = mb.poll(Instant::from_secs(3));
    assert!(verdicts.iter().all(|(_, v)| *v == PollVerdict::Keep));
    assert_eq!(mb.admitted_flows(), 1);

    // Phase 2: the client walked away; deliveries crawl (trickle at
    // huge delay). The next polls observe unacceptable QoE, the
    // classifier relabels the matrix, and the flow is revoked.
    let mut revoked = false;
    for round in 0..5u64 {
        for i in 0..40u64 {
            let t = 4_000 + round * 2_000 + i * 50;
            mb.record_delivery(
                &key,
                Instant::from_millis(t),
                Instant::from_millis(t + 2_000), // 2 s one-way delay
                200,                             // starved rate
            );
        }
        let verdicts = mb.poll(Instant::from_secs(6 + 2 * round));
        if verdicts.iter().any(|(_, v)| *v == PollVerdict::Revoke) {
            revoked = true;
            break;
        }
    }
    assert!(revoked, "middlebox never revoked the degraded flow");
    assert_eq!(mb.admitted_flows(), 0);
}
