//! Property tests for the slab flow-state layer (`exbox-core::flowtable`)
//! and the incremental-polling determinism contract.
//!
//! * [`FlowMap`] must behave exactly like `HashMap<FlowKey, V>` plus an
//!   insertion-order list, under arbitrary churn including slot reuse:
//!   fresh keys append, overwrites keep position and handle, removal +
//!   re-insert moves to the tail, stale handles always miss.
//! * [`RejectedRing`] must behave exactly like a bounded FIFO of live
//!   records: duplicate inserts are no-ops, departures delete, evictions
//!   drop the oldest live record only.
//! * A timer-wheel middlebox (`poll_wheel: true`) must return verdicts
//!   identical to the full-scan middlebox (`poll_wheel: false`) over any
//!   interleaving of arrivals, QoS reports, departures and polls — the
//!   contract that makes `EXBOX_POLL_WHEEL` a pure performance knob.

use std::collections::{HashMap, VecDeque};

use exbox::core::{FlowMap, FlowSlot, RejectedRing};
use exbox::ml::Label;
use exbox::net::{AppClass, Direction, FlowKey, Packet, Protocol};
use exbox::prelude::*;
use exbox_obs::MetricsRegistry;
use proptest::prelude::*;

fn key(n: u32) -> FlowKey {
    FlowKey::synthetic(n, n, 1, Protocol::Tcp)
}

/// Ops over a small key space so sequences revisit keys (slot reuse,
/// overwrite, re-insert) instead of only growing.
fn map_ops_strategy() -> impl Strategy<Value = Vec<(u8, u32, u32)>> {
    prop::collection::vec((0u8..4, 0u32..12, 0u32..1000), 1..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `FlowMap` == `HashMap` + insertion-order vector, under any op
    /// sequence; handles stay stable while live and miss once stale.
    #[test]
    fn flowmap_matches_hashmap_model(ops in map_ops_strategy()) {
        let mut map: FlowMap<u64> = FlowMap::new();
        let mut model: HashMap<FlowKey, u64> = HashMap::new();
        let mut order: Vec<FlowKey> = Vec::new();
        let mut live: HashMap<FlowKey, FlowSlot> = HashMap::new();
        let mut stale: Vec<FlowSlot> = Vec::new();

        for &(kind, id, val) in &ops {
            let k = key(id);
            // Three insert arms to one remove arm keeps the map
            // populated enough to exercise churn.
            if kind < 3 {
                let slot = map.insert(k, val as u64);
                if model.insert(k, val as u64).is_none() {
                    order.push(k); // fresh key appends at the tail
                }
                if let Some(prev) = live.insert(k, slot) {
                    prop_assert_eq!(prev, slot, "overwrite must keep the handle");
                }
            } else {
                prop_assert_eq!(map.remove(&k), model.remove(&k));
                if let Some(slot) = live.remove(&k) {
                    order.retain(|x| x != &k);
                    stale.push(slot);
                }
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.is_empty(), model.is_empty());
        }

        // Point lookups agree over the whole key space.
        for id in 0u32..12 {
            let k = key(id);
            prop_assert_eq!(map.get(&k), model.get(&k));
            prop_assert_eq!(map.contains_key(&k), model.contains_key(&k));
        }

        // Iteration is exactly insertion order, on every access path.
        let want: Vec<(FlowKey, u64)> = order.iter().map(|k| (*k, model[k])).collect();
        let via_iter: Vec<(FlowKey, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(&via_iter, &want);
        prop_assert_eq!(map.front().map(|(k, v)| (*k, *v)), want.first().copied());
        let mut slots = Vec::new();
        map.collect_slots(&mut slots);
        let via_slots: Vec<(FlowKey, u64)> = slots
            .iter()
            .map(|&s| {
                let (k, v) = map.get_slot(s).expect("collected handles are live");
                (*k, *v)
            })
            .collect();
        prop_assert_eq!(&via_slots, &want);

        // Live handles resolve to their key; stale handles never do,
        // even when the arena slot was reused since.
        for (k, slot) in &live {
            let resolved = map.get_slot(*slot).map(|(kk, vv)| (*kk, *vv));
            prop_assert_eq!(resolved, Some((*k, model[k])));
            prop_assert_eq!(map.slot_of(k), Some(*slot));
        }
        for slot in &stale {
            prop_assert!(map.get_slot(*slot).is_none(), "stale handle must miss");
        }
    }

    /// `RejectedRing` == a bounded FIFO over live records.
    #[test]
    fn rejected_ring_matches_fifo_model(
        cap in 1usize..6,
        ops in prop::collection::vec((0u8..3, 0u32..10), 1..200),
    ) {
        let mut ring = RejectedRing::new(cap);
        let mut model: VecDeque<FlowKey> = VecDeque::new();
        let mut model_evictions = 0u64;
        let mut model_inserts = 0u64;

        for &(kind, id) in &ops {
            let k = key(id);
            if kind < 2 {
                let ins = ring.insert(k);
                let mut want_evicted = 0u64;
                if !model.contains(&k) {
                    model.push_back(k);
                    model_inserts += 1;
                    while model.len() > cap {
                        model.pop_front();
                        want_evicted += 1;
                    }
                }
                model_evictions += want_evicted;
                prop_assert_eq!(ins.evicted, want_evicted);
            } else {
                ring.remove(&k);
                model.retain(|x| x != &k);
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert!(ring.len() <= cap, "ring must stay bounded");
            for probe in 0u32..10 {
                let pk = key(probe);
                prop_assert_eq!(ring.contains(&pk), model.contains(&pk));
            }
        }
        prop_assert_eq!(ring.inserts(), model_inserts);
        prop_assert_eq!(ring.evictions(), model_evictions);
    }
}

// ---------------------------------------------------------------------------
// Wheel-poll == scan-poll verdict equivalence on a full middlebox.

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox::core::qoe::QosScale::new(1e3, 1e8),
    )
}

/// A classifier trained online to admit at most 2 streaming flows,
/// with a small retrain batch so poll observations matter quickly.
/// Training is deterministic, so both middleboxes get identical models.
fn trained_classifier(reg: &MetricsRegistry) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::with_registry(
        AdmittanceConfig {
            batch_size: 8,
            ..AdmittanceConfig::default()
        },
        reg,
    );
    for n in 0..80u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

fn middlebox(poll_wheel: bool) -> (Middlebox, MetricsRegistry) {
    let reg = MetricsRegistry::new();
    let mut mb = Middlebox::with_registry(
        MiddleboxConfig {
            poll_wheel,
            ..MiddleboxConfig::default()
        },
        estimator(),
        trained_classifier(&reg),
        &reg,
    );
    mb.set_fault_plan(FaultPlan::disabled());
    (mb, reg)
}

/// One step of the scripted cell, applied identically to both sides.
fn apply(mb: &mut Middlebox, t_ms: u64, kind: u8, id: u32) -> Option<Vec<(FlowKey, PollVerdict)>> {
    let k = key(id);
    match kind {
        // Arrival: enough packets to classify (window 8) and decide.
        0 => {
            for i in 0..10u64 {
                let p = Packet::new(
                    Instant::from_millis(t_ms + 2 * i),
                    1400,
                    k,
                    Direction::Downlink,
                    i,
                );
                mb.process_packet(&p, SnrLevel::High);
            }
            None
        }
        // Healthy QoS window for the flow (if admitted).
        1 => {
            for i in 0..5u64 {
                mb.record_delivery(
                    &k,
                    Instant::from_millis(t_ms + i * 10),
                    Instant::from_millis(t_ms + i * 10 + 5),
                    1400,
                );
            }
            None
        }
        // Terrible QoS window: near-second delays on tiny packets.
        2 => {
            for i in 0..5u64 {
                mb.record_delivery(
                    &k,
                    Instant::from_millis(t_ms + i * 1_000),
                    Instant::from_millis(t_ms + i * 1_000 + 900),
                    50,
                );
            }
            None
        }
        // Drop-only window: evidence-free on both poll paths.
        3 => {
            for _ in 0..3 {
                mb.record_drop(&k);
            }
            None
        }
        4 => {
            mb.flow_departed(&k);
            None
        }
        // Poll (may be an interval no-op; both sides share the clock).
        _ => Some(mb.poll(Instant::from_millis(t_ms))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over any schedule of arrivals, deliveries, drops, departures
    /// and polls, the timer-wheel middlebox returns verdicts, state
    /// and counters identical to the full-scan middlebox.
    #[test]
    fn wheel_polls_equal_scan_polls(
        ops in prop::collection::vec((0u8..6, 0u32..6), 1..80),
    ) {
        let (mut wheel, wheel_reg) = middlebox(true);
        let (mut scan, scan_reg) = middlebox(false);
        let mut t_ms: u64 = 0;
        for &(kind, id) in &ops {
            // Half a poll interval per step: consecutive polls
            // alternate between executing and no-op on both sides.
            t_ms += 1_000;
            let w = apply(&mut wheel, t_ms, kind, id);
            let s = apply(&mut scan, t_ms, kind, id);
            prop_assert_eq!(w, s, "poll verdicts diverged at t={}ms", t_ms);
            prop_assert_eq!(wheel.admitted_flows(), scan.admitted_flows());
            prop_assert_eq!(wheel.matrix(), scan.matrix());
        }
        // Final poll after a full interval: flush any pending window.
        t_ms += 5_000;
        prop_assert_eq!(
            apply(&mut wheel, t_ms, 5, 0),
            apply(&mut scan, t_ms, 5, 0)
        );

        // The learnt state and the exact counter trail must agree —
        // same observations fed, same revocations taken.
        prop_assert_eq!(
            wheel.admittance().num_samples(),
            scan.admittance().num_samples()
        );
        prop_assert_eq!(
            wheel.admittance().retrain_count(),
            scan.admittance().retrain_count()
        );
        let (w, s) = (wheel_reg.snapshot(), scan_reg.snapshot());
        for name in [
            "middlebox.packets",
            "middlebox.admits",
            "middlebox.rejects",
            "middlebox.keeps",
            "middlebox.revokes",
            "middlebox.polls",
            "middlebox.departures",
            "admittance.observations",
        ] {
            prop_assert_eq!(w.counter(name), s.counter(name), "counter {}", name);
        }
    }
}
