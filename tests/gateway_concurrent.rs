//! Concurrent gateway end-to-end tests: shard-count invariance of
//! verdicts (byte-identical sorted CSVs), single-threaded parity,
//! contention-free per-shard counters merging exactly, snapshot
//! publish linearizability, and bounded packet-path latency while the
//! background trainer retrains.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use exbox::ml::Label;
use exbox::net::{AppClass, Direction, FlowKey, Packet, Protocol};
use exbox::prelude::*;
use exbox_obs::MetricsRegistry;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox::core::qoe::QosScale::new(1e3, 1e8),
    )
}

fn acfg() -> AdmittanceConfig {
    AdmittanceConfig {
        batch_size: 8,
        ..AdmittanceConfig::default()
    }
}

/// A classifier trained online to admit at most two streaming flows.
fn trained_classifier(reg: &MetricsRegistry) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::with_registry(acfg(), reg);
    for n in 0..80u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

fn trained_snapshot() -> ModelSnapshot {
    let reg = MetricsRegistry::new();
    ModelSnapshot::from_classifier(1, &trained_classifier(&reg))
}

fn streaming_pkts(key: FlowKey, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new(
                Instant::from_millis(2 * i as u64),
                1400,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect()
}

fn flow_key(id: u32) -> FlowKey {
    FlowKey::synthetic(id, id, 1, Protocol::Tcp)
}

/// Deterministic xorshift for trace interleavings.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Replay one seeded arrival/departure trace through a serving-only
/// gateway with `shards` shards; returns the sorted per-flow verdict
/// CSV (one `flow_id,verdict` line per flow).
fn verdict_csv(shards: usize, seed: u64) -> String {
    let cfg = GatewayConfig {
        shards,
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());
    let mut rng = Lcg(seed | 1);
    let mut admitted: Vec<u32> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    for id in 1..=60u32 {
        let key = flow_key(id);
        let last = streaming_pkts(key, 12)
            .iter()
            .map(|p| gw.process_packet(p, SnrLevel::High))
            .last()
            .unwrap();
        match last {
            Action::Forward => {
                admitted.push(id);
                lines.push(format!("{id},admit"));
            }
            Action::Drop => lines.push(format!("{id},reject")),
        }
        // Seeded churn: sometimes an admitted flow departs, freeing a
        // slot — this is what makes later verdicts depend on the
        // interleaving rather than only on the arrival index.
        if !admitted.is_empty() && rng.next().is_multiple_of(3) {
            let victim = admitted.swap_remove((rng.next() % admitted.len() as u64) as usize);
            gw.flow_departed(&flow_key(victim));
        }
    }
    assert_eq!(gw.admitted_flows(), admitted.len());
    lines.sort();
    lines.join("\n") + "\n"
}

/// Tentpole acceptance: the same trace replayed through 1, 2, 4 and 8
/// shards yields **byte-identical** sorted verdict CSVs (retraining
/// disabled), for several seeds.
#[test]
fn verdicts_are_shard_count_invariant() {
    for seed in [1u64, 7, 42, 1234] {
        let reference = verdict_csv(1, seed);
        assert!(
            reference.contains("admit") && reference.contains("reject"),
            "trace must exercise both verdicts (seed {seed}):\n{reference}"
        );
        for shards in [2usize, 4, 8] {
            assert_eq!(
                verdict_csv(shards, seed),
                reference,
                "seed {seed}: {shards}-shard verdicts diverged from 1-shard"
            );
        }
    }
}

/// The `EXBOX_SHARDS` knob (CI re-runs this suite with 1/2/4/8): the
/// env-selected shard count must reproduce the 1-shard verdict CSV
/// byte for byte.
#[test]
fn env_configured_shard_count_matches_reference() {
    let cfg = GatewayConfig::from_env();
    assert!(cfg.shards >= 1);
    assert_eq!(
        verdict_csv(cfg.shards, 99),
        verdict_csv(1, 99),
        "EXBOX_SHARDS={} diverged from the 1-shard reference",
        cfg.shards
    );
}

/// Satellite 1: a 1-shard gateway reaches the same verdict for every
/// flow as the single-threaded middlebox serving the same (static)
/// model on the same trace.
#[test]
fn one_shard_gateway_matches_middlebox() {
    let reg = MetricsRegistry::new();
    let mut mb = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator(),
        trained_classifier(&reg),
        &reg,
    );
    mb.set_fault_plan(FaultPlan::disabled());
    let mut gw =
        ConcurrentGateway::serving_only(GatewayConfig::default(), estimator(), trained_snapshot());

    for id in 1..=20u32 {
        let key = flow_key(id);
        for p in streaming_pkts(key, 12) {
            let a = mb.process_packet(&p, SnrLevel::High);
            let b = gw.process_packet(&p, SnrLevel::High);
            assert_eq!(a, b, "flow {id}: middlebox and gateway disagreed");
        }
        if id % 5 == 0 {
            mb.flow_departed(&key);
            gw.flow_departed(&key);
        }
    }
    assert_eq!(mb.admitted_flows(), gw.admitted_flows());
    assert_eq!(mb.matrix(), gw.matrix());
}

/// Satellite 2: shards driven from four real threads, counters
/// incremented contention-free on per-shard registries; the merged
/// export equals the sum of per-thread ground-truth verdict counts
/// exactly (no lost updates, no double counts).
#[test]
fn merged_counters_equal_sum_of_per_shard_verdicts() {
    let shards_n = 4usize;
    let cfg = GatewayConfig {
        shards: shards_n,
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());

    // Pre-partition flow ids by owner shard so each thread only ever
    // touches its own shard.
    let mut per_shard_ids: Vec<Vec<u32>> = vec![Vec::new(); shards_n];
    let mut id = 0u32;
    while per_shard_ids.iter().any(|v| v.len() < 12) {
        id += 1;
        let owner = gw.shard_for(&flow_key(id));
        if per_shard_ids[owner].len() < 12 {
            per_shard_ids[owner].push(id);
        }
    }

    let shards = gw.take_shards();
    let mut fed_total = 0u64;
    let handles: Vec<_> = shards
        .into_iter()
        .zip(per_shard_ids.iter().cloned())
        .map(|(mut shard, ids)| {
            std::thread::spawn(move || {
                let (mut admits, mut rejects, mut fed) = (0u64, 0u64, 0u64);
                for id in ids {
                    let key = flow_key(id);
                    let mut last = Action::Forward;
                    for p in streaming_pkts(key, 12) {
                        last = shard.process_packet(&p, SnrLevel::High);
                        fed += 1;
                    }
                    match last {
                        Action::Forward => admits += 1,
                        Action::Drop => rejects += 1,
                    }
                }
                (admits, rejects, fed)
            })
        })
        .collect();
    let (mut admits_truth, mut rejects_truth) = (0u64, 0u64);
    for h in handles {
        let (a, r, f) = h.join().unwrap();
        admits_truth += a;
        rejects_truth += r;
        fed_total += f;
    }

    let merged = gw.merged_metrics();
    assert_eq!(
        merged.counter("middlebox.admits").unwrap_or(0),
        admits_truth
    );
    assert_eq!(
        merged.counter("middlebox.rejects").unwrap_or(0),
        rejects_truth
    );
    assert_eq!(merged.counter("middlebox.packets").unwrap(), fed_total);
    assert_eq!(merged.counter("middlebox.revokes").unwrap_or(0), 0);
    assert!(admits_truth >= 2, "the region admits at least two flows");
    assert!(rejects_truth > 0, "the region must also reject");
    // The shared matrix saw every admission (no departures here).
    assert_eq!(gw.matrix().total() as u64, admits_truth);
}

/// Satellite 3: linearizability smoke for snapshot publication —
/// concurrent readers never observe a torn scaler/model pair (epoch
/// stamps always consistent) and epochs never move backwards, while
/// the background trainer goes bootstrap → online and keeps
/// retraining.
#[test]
fn snapshot_publish_is_linearizable() {
    let reg = MetricsRegistry::new();
    let classifier = AdmittanceClassifier::with_registry(acfg(), &reg);
    let gw = ConcurrentGateway::with_fault_plan(
        GatewayConfig::default(),
        estimator(),
        classifier,
        FaultPlan::disabled(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let max_seen = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let mut reader = gw.snapshot_reader();
            let stop = Arc::clone(&stop);
            let max_seen = Arc::clone(&max_seen);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let guard = reader.pin();
                    assert!(
                        guard.stamps_consistent(),
                        "torn snapshot: scaler and model from different epochs"
                    );
                    let epoch = guard.epoch();
                    assert!(epoch >= last_epoch, "snapshot epoch moved backwards");
                    last_epoch = epoch;
                    drop(guard);
                    max_seen.fetch_max(epoch, Ordering::SeqCst);
                }
            })
        })
        .collect();

    // Feed the <= 2 streaming-flow pattern: bootstrap exit publishes,
    // then every batch retrain publishes again.
    for n in 0..400u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        assert!(gw.inject_observation(mat, y));
    }
    assert!(gw.flush_trainer());
    // Give starved reader threads a bounded window to pin the
    // published snapshot before stopping them — on a loaded
    // single-core runner a reader can otherwise be descheduled from
    // first publish straight through to `stop`.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while max_seen.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }

    assert!(
        gw.publish_count() >= 2,
        "trainer must have published bootstrap-exit and retrain snapshots"
    );
    assert!(
        max_seen.load(Ordering::SeqCst) >= 1,
        "readers must have observed at least one published snapshot"
    );
}

fn p99_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[(samples.len() as f64 * 0.99) as usize - 1]
}

/// Acceptance: p99 decision latency while the background trainer is
/// retraining stays within 2x the steady-state p99 (with an absolute
/// floor absorbing scheduler noise on tiny debug-build latencies) —
/// the whole point of moving training off the packet path.
#[test]
fn p99_latency_bounded_during_inflight_retrain() {
    let reg = MetricsRegistry::new();
    let mut gw = ConcurrentGateway::with_fault_plan(
        GatewayConfig::default(),
        estimator(),
        trained_classifier(&reg),
        FaultPlan::disabled(),
    );

    // One standing probe flow keyed per round; measure per-packet
    // serving latency on fresh classified flows.
    let measure = |gw: &mut ConcurrentGateway, first_id: u32, flows: u32| -> Vec<f64> {
        let mut samples = Vec::new();
        for i in 0..flows {
            let key = flow_key(first_id + i);
            for p in streaming_pkts(key, 12) {
                let ((), ns) = exbox_obs::time_ns(|| {
                    gw.process_packet(&p, SnrLevel::High);
                });
                samples.push(ns);
            }
            gw.flow_departed(&key);
        }
        samples
    };

    // Warm-up, then steady-state baseline (trainer idle).
    measure(&mut gw, 1_000, 50);
    let mut steady = measure(&mut gw, 2_000, 200);
    let p99_steady = p99_ns(&mut steady);

    // Queue enough observation batches to keep the trainer retraining
    // while we measure (batch_size 8, so ~25 retrain triggers).
    let epoch_before = gw.publish_count();
    for n in 0..200u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        assert!(gw.inject_observation(mat, y));
    }
    let mut during = measure(&mut gw, 3_000, 200);
    let p99_during = p99_ns(&mut during);
    assert!(gw.flush_trainer());
    assert!(
        gw.publish_count() > epoch_before,
        "retrains must actually have published during the window"
    );

    let bound = (2.0 * p99_steady).max(50_000.0);
    assert!(
        p99_during <= bound,
        "p99 during retrain {p99_during:.0}ns exceeds bound {bound:.0}ns \
         (steady p99 {p99_steady:.0}ns)"
    );
}

/// Batched driving on a taken shard while another thread keeps
/// republishing the (identical) model: every republication trips the
/// batch path's staleness check, forcing the mid-batch re-pin — and
/// because the model content never changes, verdicts must stay exactly
/// equal to the quiescent per-packet reference. Run under TSan in CI.
#[test]
fn batched_shard_verdicts_stable_under_republication() {
    let cfg = GatewayConfig {
        shards: 1,
        ..GatewayConfig::default()
    };
    let stream: Vec<(Packet, SnrLevel)> = (1..=40u32)
        .flat_map(|id| {
            streaming_pkts(flow_key(id), 12)
                .into_iter()
                .map(|p| (p, SnrLevel::High))
        })
        .collect();

    let mut reference =
        ConcurrentGateway::serving_only(cfg.clone(), estimator(), trained_snapshot());
    let expect: Vec<Action> = stream
        .iter()
        .map(|(p, snr)| reference.process_packet(p, *snr))
        .collect();

    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());
    let cell = gw.snapshot_cell();
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Deterministic training: this classifier is bit-identical
            // to the one behind `trained_snapshot()`.
            let reg = MetricsRegistry::new();
            let classifier = trained_classifier(&reg);
            let mut epoch = 2u64;
            while !stop.load(Ordering::SeqCst) {
                cell.publish(ModelSnapshot::from_classifier(epoch, &classifier));
                epoch += 1;
                std::thread::yield_now();
            }
        })
    };

    let mut shards = gw.take_shards();
    let shard = &mut shards[0];
    let mut got = Vec::with_capacity(stream.len());
    // Prime-sized batches so batch boundaries drift across flow
    // bursts rather than aligning with them.
    for chunk in stream.chunks(7) {
        got.extend(shard.process_packets(chunk));
    }
    stop.store(true, Ordering::SeqCst);
    publisher.join().unwrap();

    assert_eq!(got, expect, "republication changed a batched verdict");
}

/// Flow-table churn on really-threaded shards: each thread drives its
/// own shard through repeated admit → deliver → depart → re-admit
/// cycles with a deliberately tiny rejected ring, exercising slab slot
/// reuse, ring eviction/removal and timer-wheel polls concurrently
/// against the shared traffic matrix. Run under TSan in CI. Per-shard
/// flow counts must match the thread's ground truth and the shared
/// matrix must equal the surviving admissions exactly.
#[test]
fn shard_flow_tables_survive_concurrent_churn() {
    let shards_n = 4usize;
    let cfg = GatewayConfig {
        shards: shards_n,
        middlebox: MiddleboxConfig {
            // Small enough that rejected-flow churn forces evictions.
            rejected_capacity: 8,
            ..MiddleboxConfig::default()
        },
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());

    // Pre-partition flow ids by owner shard so each thread only ever
    // touches its own shard.
    let mut per_shard_ids: Vec<Vec<u32>> = vec![Vec::new(); shards_n];
    let mut id = 0u32;
    while per_shard_ids.iter().any(|v| v.len() < 48) {
        id += 1;
        let owner = gw.shard_for(&flow_key(id));
        if per_shard_ids[owner].len() < 48 {
            per_shard_ids[owner].push(id);
        }
    }

    let shards = gw.take_shards();
    let handles: Vec<_> = shards
        .into_iter()
        .zip(per_shard_ids.iter().cloned())
        .map(|(mut shard, ids)| {
            std::thread::spawn(move || {
                let mut rng = Lcg(0x51AB ^ (shard.id() as u64 + 1));
                let mut open: Vec<u32> = Vec::new();
                let mut t_ms = 0u64;
                for _round in 0..3 {
                    for &id in &ids {
                        t_ms += 50;
                        if open.contains(&id) {
                            continue;
                        }
                        let key = flow_key(id);
                        let last = streaming_pkts(key, 12)
                            .iter()
                            .map(|p| shard.process_packet(p, SnrLevel::High))
                            .last()
                            .unwrap();
                        match last {
                            Action::Forward => {
                                shard.record_delivery(
                                    &key,
                                    Instant::from_millis(t_ms),
                                    Instant::from_millis(t_ms + 5),
                                    1400,
                                );
                                open.push(id);
                            }
                            Action::Drop => {
                                // Sometimes a rejected flow departs too:
                                // the ring-removal (stale-entry) path.
                                if rng.next().is_multiple_of(3) {
                                    shard.flow_departed(&key);
                                }
                            }
                        }
                        // Seeded churn: admitted departures free arena
                        // slots for reuse by later re-admissions.
                        if !open.is_empty() && rng.next().is_multiple_of(2) {
                            let victim =
                                open.swap_remove((rng.next() % open.len() as u64) as usize);
                            shard.flow_departed(&flow_key(victim));
                        }
                        if id.is_multiple_of(8) {
                            shard.poll(Instant::from_millis(t_ms));
                        }
                    }
                }
                assert_eq!(
                    shard.admitted_flows(),
                    open.len(),
                    "shard {} flow table diverged from ground truth",
                    shard.id()
                );
                open.len() as u32
            })
        })
        .collect();
    let open_total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Only surviving admissions occupy the shared matrix.
    assert_eq!(gw.matrix().total(), open_total);
    assert!(open_total >= 1, "churn must leave some admitted flows");
}

/// The trainer-side checkpoint path: written off the packet path,
/// counted on the trainer registry, and restorable into a gateway
/// that reaches the same verdicts.
#[test]
fn checkpoint_through_trainer_roundtrips() {
    let reg = MetricsRegistry::new();
    let gw = ConcurrentGateway::with_fault_plan(
        GatewayConfig::default(),
        estimator(),
        trained_classifier(&reg),
        FaultPlan::disabled(),
    );
    let dir = std::env::temp_dir().join(format!("exbox-gateway-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trainer.ckpt");
    gw.checkpoint_to_path(&path).expect("checkpoint must write");
    assert_eq!(
        gw.trainer_registry()
            .snapshot()
            .counter("recovery.checkpoint_writes")
            .unwrap(),
        1
    );

    let reg2 = MetricsRegistry::new();
    let (mut restored, err) = ConcurrentGateway::recover_from_path(
        GatewayConfig::default(),
        acfg(),
        estimator(),
        &path,
        &reg2,
    );
    assert!(err.is_none(), "pristine checkpoint must restore");
    assert!(!restored.is_recovering());
    assert_eq!(reg2.snapshot().counter("recovery.restores").unwrap(), 1);

    // <= 2 streaming region survives the roundtrip.
    let verdicts: Vec<Action> = (1..=4u32)
        .map(|id| {
            streaming_pkts(flow_key(id), 12)
                .iter()
                .map(|p| restored.process_packet(p, SnrLevel::High))
                .last()
                .unwrap()
        })
        .collect();
    assert_eq!(
        verdicts,
        vec![Action::Forward, Action::Forward, Action::Drop, Action::Drop]
    );
    std::fs::remove_file(&path).ok();
}
