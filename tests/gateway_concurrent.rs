//! Concurrent gateway end-to-end tests: shard-count invariance of
//! verdicts (byte-identical sorted CSVs), single-threaded parity,
//! contention-free per-shard counters merging exactly, snapshot
//! publish linearizability, bounded packet-path latency while the
//! background trainer retrains, and the multi-core pipeline data
//! plane: core-count-invariant verdict streams, pinned FxHash shard
//! routing, counted backpressure stalls and allocation-free steady
//! state (DESIGN.md §10).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use exbox::ml::Label;
use exbox::net::{AppClass, Direction, FlowKey, Packet, Protocol};
use exbox::prelude::*;
use exbox_obs::MetricsRegistry;

fn estimator() -> QoeEstimator {
    let mk = |a: f64, b: f64, g: f64| -> Vec<(f64, f64)> {
        (0..20)
            .map(|i| {
                let q = i as f64 / 19.0;
                (q, a + b * (-g * q).exp())
            })
            .collect()
    };
    train_estimator(
        &[mk(1.0, 11.0, 5.0), mk(2.0, 20.0, 6.0), mk(42.0, -30.0, 4.0)],
        QoeEstimator::paper_thresholds(),
        paper_directions(),
        exbox::core::qoe::QosScale::new(1e3, 1e8),
    )
}

fn acfg() -> AdmittanceConfig {
    AdmittanceConfig {
        batch_size: 8,
        ..AdmittanceConfig::default()
    }
}

/// A classifier trained online to admit at most two streaming flows.
fn trained_classifier(reg: &MetricsRegistry) -> AdmittanceClassifier {
    let mut ac = AdmittanceClassifier::with_registry(acfg(), reg);
    for n in 0..80u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        ac.observe(mat, y);
    }
    assert_eq!(ac.phase(), Phase::Online, "fixture must go online");
    ac
}

fn trained_snapshot() -> ModelSnapshot {
    let reg = MetricsRegistry::new();
    ModelSnapshot::from_classifier(1, &trained_classifier(&reg))
}

fn streaming_pkts(key: FlowKey, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new(
                Instant::from_millis(2 * i as u64),
                1400,
                key,
                Direction::Downlink,
                i as u64,
            )
        })
        .collect()
}

fn flow_key(id: u32) -> FlowKey {
    FlowKey::synthetic(id, id, 1, Protocol::Tcp)
}

/// Deterministic xorshift for trace interleavings.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Replay one seeded arrival/departure trace through a serving-only
/// gateway with `shards` shards; returns the sorted per-flow verdict
/// CSV (one `flow_id,verdict` line per flow).
fn verdict_csv(shards: usize, seed: u64) -> String {
    let cfg = GatewayConfig {
        shards,
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());
    let mut rng = Lcg(seed | 1);
    let mut admitted: Vec<u32> = Vec::new();
    let mut lines: Vec<String> = Vec::new();
    for id in 1..=60u32 {
        let key = flow_key(id);
        let last = streaming_pkts(key, 12)
            .iter()
            .map(|p| gw.process_packet(p, SnrLevel::High))
            .last()
            .unwrap();
        match last {
            Action::Forward => {
                admitted.push(id);
                lines.push(format!("{id},admit"));
            }
            Action::Drop => lines.push(format!("{id},reject")),
        }
        // Seeded churn: sometimes an admitted flow departs, freeing a
        // slot — this is what makes later verdicts depend on the
        // interleaving rather than only on the arrival index.
        if !admitted.is_empty() && rng.next().is_multiple_of(3) {
            let victim = admitted.swap_remove((rng.next() % admitted.len() as u64) as usize);
            gw.flow_departed(&flow_key(victim));
        }
    }
    assert_eq!(gw.admitted_flows(), admitted.len());
    lines.sort();
    lines.join("\n") + "\n"
}

/// Tentpole acceptance: the same trace replayed through 1, 2, 4 and 8
/// shards yields **byte-identical** sorted verdict CSVs (retraining
/// disabled), for several seeds.
#[test]
fn verdicts_are_shard_count_invariant() {
    for seed in [1u64, 7, 42, 1234] {
        let reference = verdict_csv(1, seed);
        assert!(
            reference.contains("admit") && reference.contains("reject"),
            "trace must exercise both verdicts (seed {seed}):\n{reference}"
        );
        for shards in [2usize, 4, 8] {
            assert_eq!(
                verdict_csv(shards, seed),
                reference,
                "seed {seed}: {shards}-shard verdicts diverged from 1-shard"
            );
        }
    }
}

/// The `EXBOX_SHARDS` knob (CI re-runs this suite with 1/2/4/8): the
/// env-selected shard count must reproduce the 1-shard verdict CSV
/// byte for byte.
#[test]
fn env_configured_shard_count_matches_reference() {
    let cfg = GatewayConfig::from_env();
    assert!(cfg.shards >= 1);
    assert_eq!(
        verdict_csv(cfg.shards, 99),
        verdict_csv(1, 99),
        "EXBOX_SHARDS={} diverged from the 1-shard reference",
        cfg.shards
    );
}

/// Satellite 1: a 1-shard gateway reaches the same verdict for every
/// flow as the single-threaded middlebox serving the same (static)
/// model on the same trace.
#[test]
fn one_shard_gateway_matches_middlebox() {
    let reg = MetricsRegistry::new();
    let mut mb = Middlebox::with_registry(
        MiddleboxConfig::default(),
        estimator(),
        trained_classifier(&reg),
        &reg,
    );
    mb.set_fault_plan(FaultPlan::disabled());
    let mut gw =
        ConcurrentGateway::serving_only(GatewayConfig::default(), estimator(), trained_snapshot());

    for id in 1..=20u32 {
        let key = flow_key(id);
        for p in streaming_pkts(key, 12) {
            let a = mb.process_packet(&p, SnrLevel::High);
            let b = gw.process_packet(&p, SnrLevel::High);
            assert_eq!(a, b, "flow {id}: middlebox and gateway disagreed");
        }
        if id % 5 == 0 {
            mb.flow_departed(&key);
            gw.flow_departed(&key);
        }
    }
    assert_eq!(mb.admitted_flows(), gw.admitted_flows());
    assert_eq!(mb.matrix(), gw.matrix());
}

/// Satellite 2: shards driven from four real threads, counters
/// incremented contention-free on per-shard registries; the merged
/// export equals the sum of per-thread ground-truth verdict counts
/// exactly (no lost updates, no double counts).
#[test]
fn merged_counters_equal_sum_of_per_shard_verdicts() {
    let shards_n = 4usize;
    let cfg = GatewayConfig {
        shards: shards_n,
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());

    // Pre-partition flow ids by owner shard so each thread only ever
    // touches its own shard.
    let mut per_shard_ids: Vec<Vec<u32>> = vec![Vec::new(); shards_n];
    let mut id = 0u32;
    while per_shard_ids.iter().any(|v| v.len() < 12) {
        id += 1;
        let owner = gw.shard_for(&flow_key(id));
        if per_shard_ids[owner].len() < 12 {
            per_shard_ids[owner].push(id);
        }
    }

    let shards = gw.take_shards();
    let mut fed_total = 0u64;
    let handles: Vec<_> = shards
        .into_iter()
        .zip(per_shard_ids.iter().cloned())
        .map(|(mut shard, ids)| {
            std::thread::spawn(move || {
                let (mut admits, mut rejects, mut fed) = (0u64, 0u64, 0u64);
                for id in ids {
                    let key = flow_key(id);
                    let mut last = Action::Forward;
                    for p in streaming_pkts(key, 12) {
                        last = shard.process_packet(&p, SnrLevel::High);
                        fed += 1;
                    }
                    match last {
                        Action::Forward => admits += 1,
                        Action::Drop => rejects += 1,
                    }
                }
                (admits, rejects, fed)
            })
        })
        .collect();
    let (mut admits_truth, mut rejects_truth) = (0u64, 0u64);
    for h in handles {
        let (a, r, f) = h.join().unwrap();
        admits_truth += a;
        rejects_truth += r;
        fed_total += f;
    }

    let merged = gw.merged_metrics();
    assert_eq!(
        merged.counter("middlebox.admits").unwrap_or(0),
        admits_truth
    );
    assert_eq!(
        merged.counter("middlebox.rejects").unwrap_or(0),
        rejects_truth
    );
    assert_eq!(merged.counter("middlebox.packets").unwrap(), fed_total);
    assert_eq!(merged.counter("middlebox.revokes").unwrap_or(0), 0);
    assert!(admits_truth >= 2, "the region admits at least two flows");
    assert!(rejects_truth > 0, "the region must also reject");
    // The shared matrix saw every admission (no departures here).
    assert_eq!(gw.matrix().total() as u64, admits_truth);
}

/// Satellite 3: linearizability smoke for snapshot publication —
/// concurrent readers never observe a torn scaler/model pair (epoch
/// stamps always consistent) and epochs never move backwards, while
/// the background trainer goes bootstrap → online and keeps
/// retraining.
#[test]
fn snapshot_publish_is_linearizable() {
    let reg = MetricsRegistry::new();
    let classifier = AdmittanceClassifier::with_registry(acfg(), &reg);
    let gw = ConcurrentGateway::with_fault_plan(
        GatewayConfig::default(),
        estimator(),
        classifier,
        FaultPlan::disabled(),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let max_seen = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let mut reader = gw.snapshot_reader();
            let stop = Arc::clone(&stop);
            let max_seen = Arc::clone(&max_seen);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let guard = reader.pin();
                    assert!(
                        guard.stamps_consistent(),
                        "torn snapshot: scaler and model from different epochs"
                    );
                    let epoch = guard.epoch();
                    assert!(epoch >= last_epoch, "snapshot epoch moved backwards");
                    last_epoch = epoch;
                    drop(guard);
                    max_seen.fetch_max(epoch, Ordering::SeqCst);
                }
            })
        })
        .collect();

    // Feed the <= 2 streaming-flow pattern: bootstrap exit publishes,
    // then every batch retrain publishes again.
    for n in 0..400u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        assert!(gw.inject_observation(mat, y));
    }
    assert!(gw.flush_trainer());
    // Give starved reader threads a bounded window to pin the
    // published snapshot before stopping them — on a loaded
    // single-core runner a reader can otherwise be descheduled from
    // first publish straight through to `stop`.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while max_seen.load(Ordering::SeqCst) == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }

    assert!(
        gw.publish_count() >= 2,
        "trainer must have published bootstrap-exit and retrain snapshots"
    );
    assert!(
        max_seen.load(Ordering::SeqCst) >= 1,
        "readers must have observed at least one published snapshot"
    );
}

fn p99_ns(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[(samples.len() as f64 * 0.99) as usize - 1]
}

/// Acceptance: p99 decision latency while the background trainer is
/// retraining stays within 2x the steady-state p99 (with an absolute
/// floor absorbing scheduler noise on tiny debug-build latencies) —
/// the whole point of moving training off the packet path.
#[test]
fn p99_latency_bounded_during_inflight_retrain() {
    let reg = MetricsRegistry::new();
    let mut gw = ConcurrentGateway::with_fault_plan(
        GatewayConfig::default(),
        estimator(),
        trained_classifier(&reg),
        FaultPlan::disabled(),
    );

    // One standing probe flow keyed per round; measure per-packet
    // serving latency on fresh classified flows.
    let measure = |gw: &mut ConcurrentGateway, first_id: u32, flows: u32| -> Vec<f64> {
        let mut samples = Vec::new();
        for i in 0..flows {
            let key = flow_key(first_id + i);
            for p in streaming_pkts(key, 12) {
                let ((), ns) = exbox_obs::time_ns(|| {
                    gw.process_packet(&p, SnrLevel::High);
                });
                samples.push(ns);
            }
            gw.flow_departed(&key);
        }
        samples
    };

    // Warm-up, then steady-state baseline (trainer idle).
    measure(&mut gw, 1_000, 50);
    let mut steady = measure(&mut gw, 2_000, 200);
    let p99_steady = p99_ns(&mut steady);

    // Queue enough observation batches to keep the trainer retraining
    // while we measure (batch_size 8, so ~25 retrain triggers).
    let epoch_before = gw.publish_count();
    for n in 0..200u32 {
        let total = n % 8;
        let mut mat = TrafficMatrix::empty();
        for _ in 0..total {
            mat.add(FlowKind::new(AppClass::Streaming, SnrLevel::High));
        }
        let y = if total <= 2 { Label::Pos } else { Label::Neg };
        assert!(gw.inject_observation(mat, y));
    }
    let mut during = measure(&mut gw, 3_000, 200);
    let p99_during = p99_ns(&mut during);
    assert!(gw.flush_trainer());
    assert!(
        gw.publish_count() > epoch_before,
        "retrains must actually have published during the window"
    );

    let bound = (2.0 * p99_steady).max(50_000.0);
    assert!(
        p99_during <= bound,
        "p99 during retrain {p99_during:.0}ns exceeds bound {bound:.0}ns \
         (steady p99 {p99_steady:.0}ns)"
    );
}

/// Batched driving on a taken shard while another thread keeps
/// republishing the (identical) model: every republication trips the
/// batch path's staleness check, forcing the mid-batch re-pin — and
/// because the model content never changes, verdicts must stay exactly
/// equal to the quiescent per-packet reference. Run under TSan in CI.
#[test]
fn batched_shard_verdicts_stable_under_republication() {
    let cfg = GatewayConfig {
        shards: 1,
        ..GatewayConfig::default()
    };
    let stream: Vec<(Packet, SnrLevel)> = (1..=40u32)
        .flat_map(|id| {
            streaming_pkts(flow_key(id), 12)
                .into_iter()
                .map(|p| (p, SnrLevel::High))
        })
        .collect();

    let mut reference =
        ConcurrentGateway::serving_only(cfg.clone(), estimator(), trained_snapshot());
    let expect: Vec<Action> = stream
        .iter()
        .map(|(p, snr)| reference.process_packet(p, *snr))
        .collect();

    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());
    let cell = gw.snapshot_cell();
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Deterministic training: this classifier is bit-identical
            // to the one behind `trained_snapshot()`.
            let reg = MetricsRegistry::new();
            let classifier = trained_classifier(&reg);
            let mut epoch = 2u64;
            while !stop.load(Ordering::SeqCst) {
                cell.publish(ModelSnapshot::from_classifier(epoch, &classifier));
                epoch += 1;
                std::thread::yield_now();
            }
        })
    };

    let mut shards = gw.take_shards();
    let shard = &mut shards[0];
    let mut got = Vec::with_capacity(stream.len());
    // Prime-sized batches so batch boundaries drift across flow
    // bursts rather than aligning with them.
    for chunk in stream.chunks(7) {
        got.extend(shard.process_packets(chunk));
    }
    stop.store(true, Ordering::SeqCst);
    publisher.join().unwrap();

    assert_eq!(got, expect, "republication changed a batched verdict");
}

/// Flow-table churn on really-threaded shards: each thread drives its
/// own shard through repeated admit → deliver → depart → re-admit
/// cycles with a deliberately tiny rejected ring, exercising slab slot
/// reuse, ring eviction/removal and timer-wheel polls concurrently
/// against the shared traffic matrix. Run under TSan in CI. Per-shard
/// flow counts must match the thread's ground truth and the shared
/// matrix must equal the surviving admissions exactly.
#[test]
fn shard_flow_tables_survive_concurrent_churn() {
    let shards_n = 4usize;
    let cfg = GatewayConfig {
        shards: shards_n,
        middlebox: MiddleboxConfig {
            // Small enough that rejected-flow churn forces evictions.
            rejected_capacity: 8,
            ..MiddleboxConfig::default()
        },
        ..GatewayConfig::default()
    };
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());

    // Pre-partition flow ids by owner shard so each thread only ever
    // touches its own shard.
    let mut per_shard_ids: Vec<Vec<u32>> = vec![Vec::new(); shards_n];
    let mut id = 0u32;
    while per_shard_ids.iter().any(|v| v.len() < 48) {
        id += 1;
        let owner = gw.shard_for(&flow_key(id));
        if per_shard_ids[owner].len() < 48 {
            per_shard_ids[owner].push(id);
        }
    }

    let shards = gw.take_shards();
    let handles: Vec<_> = shards
        .into_iter()
        .zip(per_shard_ids.iter().cloned())
        .map(|(mut shard, ids)| {
            std::thread::spawn(move || {
                let mut rng = Lcg(0x51AB ^ (shard.id() as u64 + 1));
                let mut open: Vec<u32> = Vec::new();
                let mut t_ms = 0u64;
                for _round in 0..3 {
                    for &id in &ids {
                        t_ms += 50;
                        if open.contains(&id) {
                            continue;
                        }
                        let key = flow_key(id);
                        let last = streaming_pkts(key, 12)
                            .iter()
                            .map(|p| shard.process_packet(p, SnrLevel::High))
                            .last()
                            .unwrap();
                        match last {
                            Action::Forward => {
                                shard.record_delivery(
                                    &key,
                                    Instant::from_millis(t_ms),
                                    Instant::from_millis(t_ms + 5),
                                    1400,
                                );
                                open.push(id);
                            }
                            Action::Drop => {
                                // Sometimes a rejected flow departs too:
                                // the ring-removal (stale-entry) path.
                                if rng.next().is_multiple_of(3) {
                                    shard.flow_departed(&key);
                                }
                            }
                        }
                        // Seeded churn: admitted departures free arena
                        // slots for reuse by later re-admissions.
                        if !open.is_empty() && rng.next().is_multiple_of(2) {
                            let victim =
                                open.swap_remove((rng.next() % open.len() as u64) as usize);
                            shard.flow_departed(&flow_key(victim));
                        }
                        if id.is_multiple_of(8) {
                            shard.poll(Instant::from_millis(t_ms));
                        }
                    }
                }
                assert_eq!(
                    shard.admitted_flows(),
                    open.len(),
                    "shard {} flow table diverged from ground truth",
                    shard.id()
                );
                open.len() as u32
            })
        })
        .collect();
    let open_total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Only surviving admissions occupy the shared matrix.
    assert_eq!(gw.matrix().total(), open_total);
    assert!(open_total >= 1, "churn must leave some admitted flows");
}

/// An interleaved stream (flows round-robin per round) — the shape
/// that spreads consecutive packets across pipeline lanes, so verdict
/// merge genuinely has to reorder.
fn interleaved_stream(flows: u32, rounds: u64) -> Vec<(Packet, SnrLevel)> {
    let mut out = Vec::with_capacity((flows as u64 * rounds) as usize);
    let mut t = 0u64;
    for s in 0..rounds {
        for id in 1..=flows {
            out.push((
                Packet::new(
                    Instant::from_millis(2 * t),
                    1400,
                    flow_key(id),
                    Direction::Downlink,
                    s,
                ),
                SnrLevel::High,
            ));
            t += 1;
        }
    }
    out
}

/// Tentpole: real-thread pipeline churn. The same interleaved stream
/// is replayed three times (start → ingest → drain → finish cycles,
/// flow state carried across cycles) at every supported core count;
/// verdicts must be byte-identical to the sequential reference at each
/// cycle, the merged flow state must match, and the pipeline's
/// conservation counters must balance. Run under TSan in CI.
#[test]
fn pipeline_verdicts_match_sequential_across_cores() {
    let stream = interleaved_stream(40, 12);
    let cycles = 3usize;

    // Sequential reference: same gateway replays the stream 3 times.
    let mut reference = ConcurrentGateway::serving_only(
        GatewayConfig {
            shards: 1,
            ..GatewayConfig::default()
        },
        estimator(),
        trained_snapshot(),
    );
    let expect: Vec<Vec<Action>> = (0..cycles)
        .map(|_| {
            stream
                .iter()
                .map(|(p, snr)| reference.process_packet(p, *snr))
                .collect()
        })
        .collect();

    for shards in [1usize, 2, 4, 8] {
        let cfg = GatewayConfig {
            shards,
            ..GatewayConfig::default()
        };
        let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());
        for cycle in expect.iter().take(cycles) {
            let mut pipe = gw.start_pipeline();
            assert_eq!(pipe.lanes(), shards);
            let mut got = Vec::with_capacity(stream.len());
            for chunk in stream.chunks(64) {
                pipe.ingest(chunk);
                pipe.drain_verdicts(&mut got);
            }
            got.extend(gw.finish_pipeline(pipe));
            assert_eq!(
                &got, cycle,
                "{shards}-core pipeline verdicts diverged from sequential"
            );
        }
        assert_eq!(gw.matrix(), reference.matrix());
        assert_eq!(gw.admitted_flows(), reference.admitted_flows());

        // Conservation: every ingested packet was merged back out, and
        // batched publication actually batched (far fewer ring
        // publishes than packets).
        let m = gw.pipeline_registry().snapshot();
        let total = (stream.len() * cycles) as u64;
        assert_eq!(m.counter("pipeline.ingested").unwrap(), total);
        assert_eq!(m.counter("pipeline.merged").unwrap(), total);
        let publishes = m.counter("gateway.ring_publishes").unwrap();
        assert!(
            publishes < total,
            "publish-per-packet defeats batching: {publishes} publishes for {total} packets"
        );
    }
}

/// Satellite 1: shard routing is pinned to `flowtable::hash_flow_key`
/// (FxHash). These assignments are a compatibility contract — the
/// dispatcher, `shard_for` diagnostics and any persisted per-shard
/// artefact all key off the same hash, so changing it is a deliberate,
/// test-visible act (and re-shards every flow).
#[test]
fn shard_routing_is_pinned_to_fxhash() {
    let gw = ConcurrentGateway::serving_only(
        GatewayConfig {
            shards: 4,
            ..GatewayConfig::default()
        },
        estimator(),
        trained_snapshot(),
    );
    let got: Vec<usize> = (1..=12u32).map(|id| gw.shard_for(&flow_key(id))).collect();
    assert_eq!(
        got,
        vec![1, 2, 0, 0, 3, 2, 1, 3, 0, 1, 0, 3],
        "FxHash shard routing changed — this re-shards every flow; \
         if intentional, update this pin and regenerate affected CSVs"
    );
    assert_eq!(
        exbox::core::flowtable::hash_flow_key(&flow_key(7)),
        0xcb16_23aa_abcb_bc11,
        "hash_flow_key output changed for a pinned key"
    );
    // Routing is shard-count-stable in the modular sense: the 1-shard
    // gateway maps everything to shard 0.
    let one =
        ConcurrentGateway::serving_only(GatewayConfig::default(), estimator(), trained_snapshot());
    assert!((1..=12u32).all(|id| one.shard_for(&flow_key(id)) == 0));
}

/// Backpressure is explicit, bounded and observable: with one lane and
/// `batch: 1` the ingress ring holds 4 slots and the in-flight window
/// 4 packets, so a blocking 480-packet ingest must stall on the
/// reorder window (the dispatcher never merges mid-ingest except in a
/// stall), and every stall shows up in the counters rather than as a
/// silent spin. `try_ingest` refuses instead of blocking.
#[test]
fn pipeline_backpressure_stalls_are_counted() {
    let cfg = GatewayConfig {
        shards: 1,
        batch: 1,
        ..GatewayConfig::default()
    };
    let stream = interleaved_stream(40, 12);
    let mut gw = ConcurrentGateway::serving_only(cfg.clone(), estimator(), trained_snapshot());
    let mut pipe = gw.start_pipeline();
    pipe.ingest(&stream);
    let tail = gw.finish_pipeline(pipe);
    assert_eq!(tail.len(), stream.len());
    let m = gw.pipeline_registry().snapshot();
    assert!(
        m.counter("pipeline.reorder_stalls").unwrap_or(0) >= 1,
        "a 480-packet blocking ingest through a 4-deep window must stall"
    );

    // Non-blocking ingest: accept-what-fits, never spin. Every refusal
    // is still counted as a stall.
    let mut gw2 = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());
    let mut pipe = gw2.start_pipeline();
    let mut offered = 0usize;
    let mut verdicts = Vec::new();
    let mut refused_once = false;
    while offered < stream.len() {
        let took = pipe.try_ingest(&stream[offered..]);
        refused_once |= took < stream.len() - offered;
        offered += took;
        pipe.drain_verdicts(&mut verdicts);
    }
    verdicts.extend(gw2.finish_pipeline(pipe));
    assert_eq!(verdicts.len(), stream.len());
    assert!(
        refused_once,
        "a 4-slot ring must refuse at least part of a 480-packet burst"
    );
    let m2 = gw2.pipeline_registry().snapshot();
    assert!(
        m2.counter("gateway.ring_full_stalls").unwrap_or(0)
            + m2.counter("pipeline.reorder_stalls").unwrap_or(0)
            >= 1,
        "refusals must be visible in the stall counters"
    );
}

/// Satellite 6: steady-state driving is allocation-free. After one
/// warmup cycle sizes every reused buffer, further
/// ingest → drain → poll cycles must not regrow anything — asserted
/// through the growth counters (`pipeline.merge_out_grows`,
/// `gateway.poll_buf_grows`) rather than an allocator hook, so the
/// test also proves the counters tell the truth.
#[test]
fn steady_state_pipeline_and_poll_are_allocation_free() {
    let cfg = GatewayConfig {
        shards: 2,
        ..GatewayConfig::default()
    };
    let stream = interleaved_stream(24, 12);
    let mut gw = ConcurrentGateway::serving_only(cfg, estimator(), trained_snapshot());

    // Warmup: one full pipeline cycle plus one poll sizes the verdict
    // buffer, the merge scratch and the poll buffer.
    let mut verdicts: Vec<Action> = Vec::new();
    let mut pipe = gw.start_pipeline();
    pipe.ingest(&stream);
    pipe.flush(&mut verdicts);
    gw.finish_pipeline(pipe);
    let mut poll_out = Vec::new();
    let mut t_ms = 10_000u64;
    for id in 1..=24u32 {
        gw.record_delivery(
            &flow_key(id),
            Instant::from_millis(t_ms),
            Instant::from_millis(t_ms + 5),
            1400,
        );
        t_ms += 10;
    }
    gw.poll_into(Instant::from_millis(t_ms), &mut poll_out);

    let warm = gw.merged_metrics();
    let grows_warm = warm.counter("pipeline.merge_out_grows").unwrap_or(0)
        + warm.counter("gateway.poll_buf_grows").unwrap_or(0);

    // Steady state: five more cycles reusing every buffer.
    for _ in 0..5 {
        verdicts.clear();
        let mut pipe = gw.start_pipeline();
        for chunk in stream.chunks(48) {
            pipe.ingest(chunk);
            pipe.drain_verdicts(&mut verdicts);
        }
        pipe.flush(&mut verdicts);
        gw.finish_pipeline(pipe);
        assert_eq!(verdicts.len(), stream.len());
        t_ms += 3_000;
        poll_out.clear();
        gw.poll_into(Instant::from_millis(t_ms), &mut poll_out);
    }

    let steady = gw.merged_metrics();
    let grows_steady = steady.counter("pipeline.merge_out_grows").unwrap_or(0)
        + steady.counter("gateway.poll_buf_grows").unwrap_or(0);
    assert_eq!(
        grows_steady, grows_warm,
        "steady-state pipeline/poll cycles regrew a reused buffer"
    );
}

/// The trainer-side checkpoint path: written off the packet path,
/// counted on the trainer registry, and restorable into a gateway
/// that reaches the same verdicts.
#[test]
fn checkpoint_through_trainer_roundtrips() {
    let reg = MetricsRegistry::new();
    let gw = ConcurrentGateway::with_fault_plan(
        GatewayConfig::default(),
        estimator(),
        trained_classifier(&reg),
        FaultPlan::disabled(),
    );
    let dir = std::env::temp_dir().join(format!("exbox-gateway-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trainer.ckpt");
    gw.checkpoint_to_path(&path).expect("checkpoint must write");
    assert_eq!(
        gw.trainer_registry()
            .snapshot()
            .counter("recovery.checkpoint_writes")
            .unwrap(),
        1
    );

    let reg2 = MetricsRegistry::new();
    let (mut restored, err) = ConcurrentGateway::recover_from_path(
        GatewayConfig::default(),
        acfg(),
        estimator(),
        &path,
        &reg2,
    );
    assert!(err.is_none(), "pristine checkpoint must restore");
    assert!(!restored.is_recovering());
    assert_eq!(reg2.snapshot().counter("recovery.restores").unwrap(), 1);

    // <= 2 streaming region survives the roundtrip.
    let verdicts: Vec<Action> = (1..=4u32)
        .map(|id| {
            streaming_pkts(flow_key(id), 12)
                .iter()
                .map(|p| restored.process_packet(p, SnrLevel::High))
                .last()
                .unwrap()
        })
        .collect();
    assert_eq!(
        verdicts,
        vec![Action::Forward, Action::Forward, Action::Drop, Action::Drop]
    );
    std::fs::remove_file(&path).ok();
}
